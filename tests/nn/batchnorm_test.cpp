#include "gansec/nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gansec/error.hpp"
#include "gansec/math/rng.hpp"
#include "gansec/nn/serialize.hpp"

namespace gansec::nn {
namespace {

using math::Matrix;
using math::Rng;

TEST(BatchNorm, Validation) {
  EXPECT_THROW(BatchNorm(0), InvalidArgumentError);
  EXPECT_THROW(BatchNorm(4, 0.0F), InvalidArgumentError);
  EXPECT_THROW(BatchNorm(4, 1.5F), InvalidArgumentError);
  EXPECT_THROW(BatchNorm(4, 0.1F, 0.0F), InvalidArgumentError);
}

TEST(BatchNorm, ForwardShapeErrors) {
  BatchNorm bn(4);
  EXPECT_THROW(bn.forward(Matrix(2, 3), true), DimensionError);
  EXPECT_THROW(bn.forward(Matrix(0, 4), true), InvalidArgumentError);
}

TEST(BatchNorm, NormalizesBatchInTraining) {
  Rng rng(3);
  BatchNorm bn(5);
  const Matrix x = rng.normal_matrix(256, 5, 3.0F, 2.0F);
  const Matrix y = bn.forward(x, /*training=*/true);
  for (std::size_t c = 0; c < 5; ++c) {
    double mean = 0.0;
    double sq = 0.0;
    for (std::size_t r = 0; r < y.rows(); ++r) {
      mean += y(r, c);
      sq += static_cast<double>(y(r, c)) * y(r, c);
    }
    mean /= static_cast<double>(y.rows());
    const double var = sq / static_cast<double>(y.rows()) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, AffineParametersApplied) {
  BatchNorm bn(2);
  bn.gamma().value = Matrix::from_rows({{2.0F, 0.5F}});
  bn.beta().value = Matrix::from_rows({{1.0F, -1.0F}});
  Rng rng(5);
  const Matrix x = rng.normal_matrix(128, 2, 0.0F, 1.0F);
  const Matrix y = bn.forward(x, true);
  double mean0 = 0.0;
  double mean1 = 0.0;
  for (std::size_t r = 0; r < y.rows(); ++r) {
    mean0 += y(r, 0);
    mean1 += y(r, 1);
  }
  EXPECT_NEAR(mean0 / 128.0, 1.0, 1e-3);
  EXPECT_NEAR(mean1 / 128.0, -1.0, 1e-3);
}

TEST(BatchNorm, RunningStatsConvergeToDataStats) {
  Rng rng(7);
  BatchNorm bn(1, 0.2F);
  for (int step = 0; step < 200; ++step) {
    bn.forward(rng.normal_matrix(64, 1, 4.0F, 3.0F), true);
  }
  EXPECT_NEAR(bn.running_mean()(0, 0), 4.0F, 0.3F);
  EXPECT_NEAR(bn.running_var()(0, 0), 9.0F, 1.5F);
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  Rng rng(9);
  BatchNorm bn(1, 0.5F);
  for (int step = 0; step < 50; ++step) {
    bn.forward(rng.normal_matrix(64, 1, 2.0F, 1.0F), true);
  }
  // Single sample at the running mean normalizes to ~beta.
  Matrix probe(1, 1, bn.running_mean()(0, 0));
  const Matrix y = bn.forward(probe, /*training=*/false);
  EXPECT_NEAR(y(0, 0), 0.0F, 0.05F);
  // Eval must not disturb running statistics.
  const float before = bn.running_mean()(0, 0);
  bn.forward(Matrix(4, 1, 100.0F), false);
  EXPECT_FLOAT_EQ(bn.running_mean()(0, 0), before);
}

TEST(BatchNorm, GradientsMatchFiniteDifferencesEvalMode) {
  // Eval mode treats statistics as constants, so plain finite differences
  // apply cleanly (train-mode gradients are checked via the identity
  // below).
  Rng rng(11);
  BatchNorm bn(3);
  bn.forward(rng.normal_matrix(64, 3, 1.0F, 2.0F), true);  // set stats
  Matrix x = rng.normal_matrix(4, 3, 1.0F, 2.0F);
  const Matrix w = rng.normal_matrix(4, 3, 0.0F, 1.0F);
  bn.forward(x, false);
  bn.gamma().zero_grad();
  bn.beta().zero_grad();
  const Matrix grad_in = bn.backward(w);
  const float eps = 1e-3F;
  const auto loss = [&](const Matrix& input) {
    const Matrix y = bn.forward(input, false);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      acc += static_cast<double>(y.data()[i]) * w.data()[i];
    }
    return acc;
  };
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double up = loss(x);
    x.data()[i] = orig - eps;
    const double dn = loss(x);
    x.data()[i] = orig;
    EXPECT_NEAR(grad_in.data()[i], (up - dn) / (2.0 * eps), 2e-2);
  }
}

TEST(BatchNorm, TrainGradientSumsVanish) {
  // In train mode, dL/dx summed over the batch is zero per feature when
  // dL/dy has zero projection onto (1, xhat) — use the closed-form
  // identity: sum_r dx(r,c) == (gamma/std) * (sum dy - 0 - sum(xhat) *
  // mean(dy*xhat)) and sum(xhat) == 0, so sum_r dx == 0 whenever
  // sum_r dy == 0 per column... verify numerically with centered dy.
  Rng rng(13);
  BatchNorm bn(2);
  const Matrix x = rng.normal_matrix(32, 2, 0.0F, 1.0F);
  bn.forward(x, true);
  Matrix dy = rng.normal_matrix(32, 2, 0.0F, 1.0F);
  // Center each column of dy.
  for (std::size_t c = 0; c < 2; ++c) {
    float mu = 0.0F;
    for (std::size_t r = 0; r < 32; ++r) mu += dy(r, c);
    mu /= 32.0F;
    for (std::size_t r = 0; r < 32; ++r) dy(r, c) -= mu;
  }
  const Matrix dx = bn.backward(dy);
  for (std::size_t c = 0; c < 2; ++c) {
    float acc = 0.0F;
    for (std::size_t r = 0; r < 32; ++r) acc += dx(r, c);
    EXPECT_NEAR(acc, 0.0F, 1e-3F);
  }
}

TEST(BatchNorm, CloneCopiesEverything) {
  Rng rng(15);
  BatchNorm bn(2);
  bn.forward(rng.normal_matrix(64, 2, 5.0F, 2.0F), true);
  auto clone = bn.clone();
  auto* copy = dynamic_cast<BatchNorm*>(clone.get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->running_mean(), bn.running_mean());
  EXPECT_EQ(copy->running_var(), bn.running_var());
  const Matrix probe = rng.normal_matrix(3, 2, 5.0F, 2.0F);
  EXPECT_EQ(bn.forward(probe, false), copy->forward(probe, false));
}

TEST(BatchNorm, SerializeRoundTrip) {
  Rng rng(17);
  Mlp net;
  net.emplace<BatchNorm>(3, 0.2F, 1e-4F);
  dynamic_cast<BatchNorm&>(net.layer(0))
      .forward(rng.normal_matrix(64, 3, 2.0F, 1.5F), true);
  std::stringstream ss;
  save_mlp(net, ss);
  Mlp loaded = load_mlp(ss);
  const auto& bn = dynamic_cast<const BatchNorm&>(loaded.layer(0));
  EXPECT_FLOAT_EQ(bn.momentum(), 0.2F);
  EXPECT_FLOAT_EQ(bn.eps(), 1e-4F);
  const Matrix probe = rng.normal_matrix(2, 3, 2.0F, 1.5F);
  EXPECT_EQ(net.forward(probe, false), loaded.forward(probe, false));
}

TEST(BatchNorm, InitWeightsResets) {
  Rng rng(19);
  BatchNorm bn(2);
  bn.forward(rng.normal_matrix(64, 2, 9.0F, 2.0F), true);
  bn.gamma().value(0, 0) = 5.0F;
  bn.init_weights(rng);
  EXPECT_FLOAT_EQ(bn.gamma().value(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(bn.running_mean()(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(bn.running_var()(0, 0), 1.0F);
}

}  // namespace
}  // namespace gansec::nn
