#include <gtest/gtest.h>

#include <cmath>

#include "gansec/error.hpp"
#include "gansec/math/rng.hpp"
#include "gansec/nn/activations.hpp"
#include "gansec/nn/dense.hpp"
#include "gansec/nn/dropout.hpp"

namespace gansec::nn {
namespace {

using math::Matrix;
using math::Rng;

/// Scalar test loss: L = sum(output .* weights). dL/dOutput = weights.
double weighted_sum(const Matrix& out, const Matrix& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    acc += static_cast<double>(out.data()[i]) *
           static_cast<double>(w.data()[i]);
  }
  return acc;
}

/// Verifies layer.backward against central finite differences, both for
/// the input gradient and every parameter gradient.
void check_gradients(Layer& layer, const Matrix& input, double tol = 2e-2) {
  Rng rng(99);
  Matrix out = layer.forward(input, /*training=*/false);
  const Matrix w = rng.normal_matrix(out.rows(), out.cols(), 0.0F, 1.0F);

  for (Parameter* p : layer.parameters()) p->zero_grad();
  const Matrix grad_in = layer.backward(w);

  const float eps = 1e-3F;
  // Input gradient.
  Matrix x = input;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double up = weighted_sum(layer.forward(x, false), w);
    x.data()[i] = orig - eps;
    const double dn = weighted_sum(layer.forward(x, false), w);
    x.data()[i] = orig;
    const double numeric = (up - dn) / (2.0 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, tol)
        << "input grad mismatch at " << i;
  }
  // Restore caches to the nominal input before parameter perturbation.
  layer.forward(input, false);
  const Matrix grad_in2 = layer.backward(w);
  (void)grad_in2;

  for (Parameter* p : layer.parameters()) {
    // backward was called twice; gradients accumulated twice.
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double up = weighted_sum(layer.forward(input, false), w);
      p->value.data()[i] = orig - eps;
      const double dn = weighted_sum(layer.forward(input, false), w);
      p->value.data()[i] = orig;
      const double numeric = (up - dn) / (2.0 * eps);
      EXPECT_NEAR(p->grad.data()[i] / 2.0F, numeric, tol)
          << "param " << p->name << " grad mismatch at " << i;
    }
  }
}

TEST(Dense, ForwardKnownValues) {
  Dense dense(2, 2);
  dense.weight().value = Matrix::from_rows({{1.0F, 2.0F}, {3.0F, 4.0F}});
  dense.bias().value = Matrix::row_vector({0.5F, -0.5F});
  const Matrix x = Matrix::from_rows({{1.0F, 1.0F}});
  const Matrix y = dense.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), 4.5F);   // 1*1 + 1*3 + 0.5
  EXPECT_FLOAT_EQ(y(0, 1), 5.5F);   // 1*2 + 1*4 - 0.5
}

TEST(Dense, ZeroDimensionsThrow) {
  EXPECT_THROW(Dense(0, 4), InvalidArgumentError);
  EXPECT_THROW(Dense(4, 0), InvalidArgumentError);
}

TEST(Dense, ForwardWidthMismatchThrows) {
  Dense dense(3, 2);
  EXPECT_THROW(dense.forward(Matrix(1, 4), false), DimensionError);
}

TEST(Dense, BackwardShapeMismatchThrows) {
  Dense dense(3, 2);
  dense.forward(Matrix(2, 3), false);
  EXPECT_THROW(dense.backward(Matrix(2, 3)), DimensionError);
  EXPECT_THROW(dense.backward(Matrix(1, 2)), DimensionError);
}

TEST(Dense, BackwardColumnMismatchThrows) {
  // The gradient's width must equal the layer's output width even when
  // the row count matches the cached batch size.
  Dense dense(4, 3);
  const Matrix x(5, 4);
  dense.forward(x, false);
  EXPECT_THROW(dense.backward(Matrix(5, 2)), DimensionError);
  EXPECT_THROW(dense.backward(Matrix(5, 4)), DimensionError);
  // The matching shape passes.
  EXPECT_NO_THROW(dense.backward(Matrix(5, 3)));
}

TEST(Dense, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  Dense dense(4, 3);
  dense.init_weights(rng);
  const Matrix x = rng.normal_matrix(5, 4, 0.0F, 1.0F);
  check_gradients(dense, x);
}

TEST(Dense, XavierInitWithinLimit) {
  Rng rng(3);
  Dense dense(10, 20, InitScheme::kXavierUniform);
  dense.init_weights(rng);
  const float limit = std::sqrt(6.0F / 30.0F);
  EXPECT_GE(dense.weight().value.min(), -limit);
  EXPECT_LE(dense.weight().value.max(), limit);
  EXPECT_FLOAT_EQ(dense.bias().value.min(), 0.0F);
  EXPECT_FLOAT_EQ(dense.bias().value.max(), 0.0F);
}

TEST(Dense, HeInitVariance) {
  Rng rng(5);
  Dense dense(100, 200, InitScheme::kHeNormal);
  dense.init_weights(rng);
  double sq = 0.0;
  const auto& w = dense.weight().value;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  const double var = sq / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 100.0, 0.004);
}

TEST(Dense, CloneIsDeepCopy) {
  Rng rng(1);
  Dense dense(2, 2);
  dense.init_weights(rng);
  auto clone = dense.clone();
  auto* cloned = dynamic_cast<Dense*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_EQ(cloned->weight().value, dense.weight().value);
  cloned->weight().value(0, 0) += 1.0F;
  EXPECT_NE(cloned->weight().value, dense.weight().value);
}

TEST(Relu, ForwardClampsNegatives) {
  Relu relu;
  const Matrix x = Matrix::from_rows({{-1.0F, 0.0F, 2.0F}});
  const Matrix y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(y(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0F);
}

TEST(Relu, GradientsMatchFiniteDifferences) {
  Rng rng(17);
  Relu relu;
  // Keep inputs away from the kink at 0 for a clean finite difference.
  Matrix x = rng.normal_matrix(3, 4, 0.0F, 1.0F);
  x.apply([](float v) { return std::abs(v) < 0.05F ? v + 0.2F : v; });
  check_gradients(relu, x);
}

TEST(LeakyRelu, NegativeSlope) {
  LeakyRelu lrelu(0.1F);
  const Matrix x = Matrix::from_rows({{-2.0F, 3.0F}});
  const Matrix y = lrelu.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), -0.2F);
  EXPECT_FLOAT_EQ(y(0, 1), 3.0F);
  EXPECT_THROW(LeakyRelu(-0.5F), InvalidArgumentError);
}

TEST(LeakyRelu, GradientsMatchFiniteDifferences) {
  Rng rng(19);
  LeakyRelu lrelu(0.2F);
  Matrix x = rng.normal_matrix(3, 4, 0.0F, 1.0F);
  x.apply([](float v) { return std::abs(v) < 0.05F ? v + 0.2F : v; });
  check_gradients(lrelu, x);
}

TEST(Tanh, ForwardRange) {
  Tanh tanh_layer;
  const Matrix x = Matrix::from_rows({{-10.0F, 0.0F, 10.0F}});
  const Matrix y = tanh_layer.forward(x, false);
  EXPECT_NEAR(y(0, 0), -1.0F, 1e-4F);
  EXPECT_FLOAT_EQ(y(0, 1), 0.0F);
  EXPECT_NEAR(y(0, 2), 1.0F, 1e-4F);
}

TEST(Tanh, GradientsMatchFiniteDifferences) {
  Rng rng(23);
  Tanh tanh_layer;
  const Matrix x = rng.normal_matrix(3, 4, 0.0F, 1.0F);
  check_gradients(tanh_layer, x);
}

TEST(Sigmoid, ForwardValues) {
  Sigmoid sigmoid;
  const Matrix x = Matrix::from_rows({{0.0F, -100.0F, 100.0F}});
  const Matrix y = sigmoid.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), 0.5F);
  EXPECT_NEAR(y(0, 1), 0.0F, 1e-6F);
  EXPECT_NEAR(y(0, 2), 1.0F, 1e-6F);
}

TEST(Sigmoid, GradientsMatchFiniteDifferences) {
  Rng rng(29);
  Sigmoid sigmoid;
  const Matrix x = rng.normal_matrix(3, 4, 0.0F, 1.0F);
  check_gradients(sigmoid, x);
}

TEST(Dropout, EvalModePassThrough) {
  Dropout dropout(0.5F);
  const Matrix x = Matrix::from_rows({{1.0F, 2.0F, 3.0F}});
  const Matrix y = dropout.forward(x, /*training=*/false);
  EXPECT_EQ(y, x);
}

TEST(Dropout, InvalidRateThrows) {
  EXPECT_THROW(Dropout(-0.1F), InvalidArgumentError);
  EXPECT_THROW(Dropout(1.0F), InvalidArgumentError);
}

TEST(Dropout, TrainingZeroesApproxRate) {
  Dropout dropout(0.3F, 77);
  const Matrix x(1, 10000, 1.0F);
  const Matrix y = dropout.forward(x, /*training=*/true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0F) ++zeros;
    sum += y.data()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  // Inverted scaling preserves the expected activation magnitude.
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout dropout(0.5F, 3);
  const Matrix x(2, 50, 1.0F);
  const Matrix y = dropout.forward(x, true);
  const Matrix g = dropout.backward(Matrix(2, 50, 1.0F));
  // Gradient is zero exactly where the output was dropped.
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(g.data()[i], y.data()[i]);
  }
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  Dropout dropout(0.0F);
  const Matrix x = Matrix::from_rows({{1.0F, -2.0F}});
  EXPECT_EQ(dropout.forward(x, true), x);
  EXPECT_EQ(dropout.backward(x), x);
}

}  // namespace
}  // namespace gansec::nn
