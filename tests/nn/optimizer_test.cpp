#include "gansec/nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gansec/error.hpp"

namespace gansec::nn {
namespace {

using math::Matrix;

/// Convex quadratic f(w) = 0.5 * ||w - target||^2; gradient = w - target.
void fill_quadratic_grad(Parameter& p, const Matrix& target) {
  p.grad = p.value;
  p.grad -= target;
}

Parameter make_param(float v0, float v1) {
  return Parameter("w", Matrix::from_rows({{v0, v1}}));
}

TEST(Optimizer, NullParameterThrows) {
  std::vector<Parameter*> params{nullptr};
  EXPECT_THROW(Sgd(params, 0.1F), InvalidArgumentError);
}

TEST(Optimizer, ZeroGradClears) {
  Parameter p = make_param(1.0F, 2.0F);
  p.grad = Matrix::from_rows({{5.0F, 5.0F}});
  Sgd sgd({&p}, 0.1F);
  sgd.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.sum(), 0.0F);
}

TEST(Sgd, SingleStep) {
  Parameter p = make_param(1.0F, -1.0F);
  p.grad = Matrix::from_rows({{0.5F, -0.5F}});
  Sgd sgd({&p}, 0.2F);
  sgd.step();
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.9F);
  EXPECT_FLOAT_EQ(p.value(0, 1), -0.9F);
}

TEST(Sgd, InvalidLearningRateThrows) {
  Parameter p = make_param(0.0F, 0.0F);
  EXPECT_THROW(Sgd({&p}, 0.0F), InvalidArgumentError);
  EXPECT_THROW(Sgd({&p}, -1.0F), InvalidArgumentError);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Parameter p = make_param(10.0F, -10.0F);
  const Matrix target = Matrix::from_rows({{3.0F, 4.0F}});
  Sgd sgd({&p}, 0.1F);
  for (int i = 0; i < 300; ++i) {
    sgd.zero_grad();
    fill_quadratic_grad(p, target);
    sgd.step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0F, 1e-3F);
  EXPECT_NEAR(p.value(0, 1), 4.0F, 1e-3F);
}

TEST(Momentum, InvalidArgsThrow) {
  Parameter p = make_param(0.0F, 0.0F);
  EXPECT_THROW(Momentum({&p}, 0.0F), InvalidArgumentError);
  EXPECT_THROW(Momentum({&p}, 0.1F, 1.0F), InvalidArgumentError);
  EXPECT_THROW(Momentum({&p}, 0.1F, -0.1F), InvalidArgumentError);
}

TEST(Momentum, FirstStepEqualsSgd) {
  Parameter p = make_param(1.0F, 1.0F);
  p.grad = Matrix::from_rows({{1.0F, 2.0F}});
  Momentum momentum({&p}, 0.1F, 0.9F);
  momentum.step();
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.9F);
  EXPECT_FLOAT_EQ(p.value(0, 1), 0.8F);
}

TEST(Momentum, AcceleratesAlongConstantGradient) {
  Parameter p = make_param(0.0F, 0.0F);
  Momentum momentum({&p}, 0.1F, 0.9F);
  float prev_delta = 0.0F;
  float prev_value = 0.0F;
  for (int i = 0; i < 5; ++i) {
    momentum.zero_grad();
    p.grad = Matrix::from_rows({{1.0F, 0.0F}});
    momentum.step();
    const float delta = prev_value - p.value(0, 0);
    EXPECT_GT(delta, prev_delta);  // velocity builds up
    prev_delta = delta;
    prev_value = p.value(0, 0);
  }
}

TEST(Momentum, ConvergesOnQuadratic) {
  Parameter p = make_param(10.0F, -10.0F);
  const Matrix target = Matrix::from_rows({{-2.0F, 5.0F}});
  Momentum momentum({&p}, 0.05F, 0.8F);
  for (int i = 0; i < 400; ++i) {
    momentum.zero_grad();
    fill_quadratic_grad(p, target);
    momentum.step();
  }
  EXPECT_NEAR(p.value(0, 0), -2.0F, 1e-2F);
  EXPECT_NEAR(p.value(0, 1), 5.0F, 1e-2F);
}

TEST(Adam, InvalidArgsThrow) {
  Parameter p = make_param(0.0F, 0.0F);
  EXPECT_THROW(Adam({&p}, 0.0F), InvalidArgumentError);
  EXPECT_THROW(Adam({&p}, 0.1F, 1.0F), InvalidArgumentError);
  EXPECT_THROW(Adam({&p}, 0.1F, 0.9F, 1.0F), InvalidArgumentError);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  Parameter p = make_param(0.0F, 0.0F);
  p.grad = Matrix::from_rows({{100.0F, -0.001F}});
  Adam adam({&p}, 0.1F);
  adam.step();
  // Bias-corrected Adam's first step magnitude ~= lr regardless of gradient
  // scale.
  EXPECT_NEAR(p.value(0, 0), -0.1F, 1e-3F);
  EXPECT_NEAR(p.value(0, 1), 0.1F, 1e-2F);
}

TEST(Adam, ConvergesOnQuadratic) {
  Parameter p = make_param(8.0F, -3.0F);
  const Matrix target = Matrix::from_rows({{1.0F, 2.0F}});
  Adam adam({&p}, 0.1F);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    fill_quadratic_grad(p, target);
    adam.step();
  }
  EXPECT_NEAR(p.value(0, 0), 1.0F, 1e-2F);
  EXPECT_NEAR(p.value(0, 1), 2.0F, 1e-2F);
}

TEST(Adam, HandlesMultipleParameters) {
  Parameter a = make_param(5.0F, 5.0F);
  Parameter b = make_param(-5.0F, -5.0F);
  const Matrix ta = Matrix::from_rows({{0.0F, 0.0F}});
  const Matrix tb = Matrix::from_rows({{1.0F, 1.0F}});
  Adam adam({&a, &b}, 0.1F);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    fill_quadratic_grad(a, ta);
    fill_quadratic_grad(b, tb);
    adam.step();
  }
  EXPECT_NEAR(a.value(0, 0), 0.0F, 1e-2F);
  EXPECT_NEAR(b.value(0, 1), 1.0F, 1e-2F);
}

// All three optimizers must reach the optimum of the same convex problem.
enum class Kind { kSgd, kMomentum, kAdam };
class OptimizerConvergence : public ::testing::TestWithParam<Kind> {};

TEST_P(OptimizerConvergence, ReachesOptimum) {
  Parameter p = make_param(7.0F, -7.0F);
  const Matrix target = Matrix::from_rows({{0.5F, -0.25F}});
  std::unique_ptr<Optimizer> opt;
  switch (GetParam()) {
    case Kind::kSgd:
      opt = std::make_unique<Sgd>(std::vector<Parameter*>{&p}, 0.1F);
      break;
    case Kind::kMomentum:
      opt = std::make_unique<Momentum>(std::vector<Parameter*>{&p}, 0.05F);
      break;
    case Kind::kAdam:
      opt = std::make_unique<Adam>(std::vector<Parameter*>{&p}, 0.1F);
      break;
  }
  for (int i = 0; i < 800; ++i) {
    opt->zero_grad();
    fill_quadratic_grad(p, target);
    opt->step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.5F, 0.05F);
  EXPECT_NEAR(p.value(0, 1), -0.25F, 0.05F);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OptimizerConvergence,
                         ::testing::Values(Kind::kSgd, Kind::kMomentum,
                                           Kind::kAdam));

}  // namespace
}  // namespace gansec::nn
