// Call-graph fixture: two-hop propagation. driver()'s hot-path region
// reaches leaf() only through middle(); the chain must name both hops.
namespace fx {

int* leaf() {
  return new int(7);
}

int* middle() {
  return leaf();
}

void driver(int** out) {
  // gansec-lint: hot-path
  *out = middle();
  // gansec-lint: end-hot-path
}

}  // namespace fx
