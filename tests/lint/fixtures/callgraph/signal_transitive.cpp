// Call-graph fixture: signal-context propagation. The handler's region
// calls log_state(), whose lock acquisition is only visible through the
// call graph.
#include <mutex>

namespace fx {

std::mutex g_mu;
int g_state = 0;

void log_state(int value) {
  g_mu.lock();
  g_state = value;
  g_mu.unlock();
}

void handler() {
  // gansec-lint: signal-context
  log_state(4);
  // gansec-lint: end-signal-context
}

}  // namespace fx
