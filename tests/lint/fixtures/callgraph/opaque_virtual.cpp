// Call-graph fixture: virtual dispatch is an opaque edge. The override
// allocates, but the linter cannot prove which override runs, so the
// edge is recorded as evidence and never traversed.
#include <vector>

namespace fx {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void consume(int value) = 0;
};

class Buffering : public Sink {
 public:
  void consume(int value) override { values_.push_back(value); }

 private:
  std::vector<int> values_;
};

void driver(Buffering& sink) {
  // gansec-lint: hot-path
  sink.consume(9);
  // gansec-lint: end-hot-path
}

}  // namespace fx
