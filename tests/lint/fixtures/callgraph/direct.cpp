// Call-graph fixture: direct propagation. The hot-path region in
// driver() calls helper(), defined outside any region; helper's
// allocation must be reported with a one-hop call chain.
#include <vector>

namespace fx {

void helper(std::vector<int>& sink) {
  sink.push_back(1);
}

void driver(std::vector<int>& sink) {
  // gansec-lint: hot-path
  helper(sink);
  // gansec-lint: end-hot-path
}

}  // namespace fx
