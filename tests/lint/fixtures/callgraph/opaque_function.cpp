// Call-graph fixture: a call through a std::function object is opaque.
// grow() allocates, but the thunk's target is a runtime value; the edge
// is recorded as evidence and never traversed.
#include <functional>
#include <vector>

namespace fx {

void grow(std::vector<int>& sink) {
  sink.push_back(3);
}

void driver(std::vector<int>& sink) {
  const std::function<void()> thunk = [&sink] { grow(sink); };
  // gansec-lint: hot-path
  thunk();
  // gansec-lint: end-hot-path
}

}  // namespace fx
