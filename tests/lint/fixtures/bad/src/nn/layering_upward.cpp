// Fixture: module nn (layer 3) including gan (layer 4) is an upward edge.
// Expected: layering at line 3.
#include "gansec/gan/cgan.hpp"

int fixture_layering_upward() { return 0; }
