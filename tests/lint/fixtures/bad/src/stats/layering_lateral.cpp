// Fixture: stats and nn share layer 3; lateral includes are forbidden.
// Expected: layering at line 3.
#include "gansec/nn/mlp.hpp"

int fixture_layering_lateral() { return 0; }
