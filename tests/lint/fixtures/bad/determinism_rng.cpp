// Fixture: every banned nondeterminism source. Expected:
// determinism-rng at lines 10, 11, 12, 13.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline unsigned bad_entropy() {
  std::random_device rd;
  std::srand(rd());
  const int noise = rand();
  return static_cast<unsigned>(std::time(nullptr)) + noise;
}

}  // namespace fixture
