// unused-allow: a suppression that matches no diagnostic is itself
// flagged, so stale allows cannot accumulate silently.
namespace fx {

// gansec-lint: allow(hotpath-alloc)
int identity(int value) { return value; }

}  // namespace fx
