// Fixture: a naive crash dump — everything the incident signal path
// must never do: strings, locks, stdio. Expected: signal-unsafe at
// lines 13, 14, 15, 16, 17, 18, 19.
#include <cstdio>
#include <mutex>
#include <string>

inline std::mutex g_dump_mu;  // declared outside the region on purpose

// gansec-lint: signal-context
inline void naive_crash_dump(int sig) {
  char buf[64];
  std::string path = "incident.json";
  g_dump_mu.lock();
  std::snprintf(buf, sizeof buf, "%d", sig);
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "{\"signo\":%d}", sig);
  std::fclose(f);
  g_dump_mu.unlock();
}
// gansec-lint: end-signal-context
