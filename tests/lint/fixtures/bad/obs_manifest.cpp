// Fixture: a well-formed registration that the manifest does not list.
// Expected (with fixtures/manifest_good.txt): obs-manifest at line 8.
#include "gansec/obs/metrics.hpp"

namespace fixture {

inline void record() {
  obs::gauge("fixture.unlisted.depth").set(3.0);
}

}  // namespace fixture
