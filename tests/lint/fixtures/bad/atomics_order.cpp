// atomics-ordering: a seqlock writer publishing with a relaxed commit
// store, a reader that never acquires, and a consume order.
#include <atomic>

namespace fx {

std::atomic<unsigned> stamp{0};
std::atomic<unsigned> payload{0};

void publish(unsigned value) {
  // gansec-lint: seqlock(writer)
  stamp.store(1, std::memory_order_relaxed);
  payload.store(value, std::memory_order_release);
  stamp.store(2, std::memory_order_relaxed);
  // gansec-lint: end-seqlock
}

unsigned racy_snapshot() {
  // gansec-lint: seqlock(reader)
  const unsigned s1 = stamp.load(std::memory_order_relaxed);
  const unsigned value = payload.load(std::memory_order_relaxed);
  const unsigned s2 = stamp.load(std::memory_order_relaxed);
  // gansec-lint: end-seqlock
  return s1 == s2 ? value : 0U;
}

unsigned consume_snapshot() {
  // gansec-lint: seqlock(reader)
  const unsigned s = stamp.load(std::memory_order_consume);
  // gansec-lint: end-seqlock
  return s;
}

}  // namespace fx
