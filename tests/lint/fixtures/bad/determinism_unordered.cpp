// Fixture: iterating an unordered container (range-for and explicit
// iterators). Expected: determinism-unordered at lines 11, 14.
#include <unordered_map>

namespace fixture {

inline int bad_iteration() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  // Explicit iterator form is just as order-dependent.
  int first = 0;
  auto it = counts.begin();
  if (it != counts.end()) first = it->second;
  return total + first;
}

}  // namespace fixture
