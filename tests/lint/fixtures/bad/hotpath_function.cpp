// Fixture: std::function on a hot path (type-erased calls allocate and
// cannot inline). Expected: hotpath-function at line 8.
#include <functional>

namespace fixture {

// gansec-lint: hot-path
inline float apply(const std::function<float(float)>& fn, float v) {
  return fn(v);
}
// gansec-lint: end-hot-path

}  // namespace fixture
