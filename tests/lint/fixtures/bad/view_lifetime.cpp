// view-lifetime: returning a borrow whose backing storage dies with the
// returning frame (by-value parameter, body-declared local, or a
// Workspace::Scope about to pop).
namespace fx {

struct Series {
  const float* data_view() const { return buffer; }
  float buffer[8] = {};
};

struct Arena {
  Series& acquire() { return slot; }
  Series slot;
};

struct Scope {
  explicit Scope(Arena& arena) : arena_(arena) {}
  Arena& arena_;
};

const float* by_value_receiver(Series series) {
  return series.data_view();
}

const float* local_receiver() {
  Series series;
  const float* view = series.data_view();
  return view;
}

const float* scope_escape(Arena& arena) {
  Scope scope(arena);
  Series& series = arena.acquire();
  return series.data_view();
}

}  // namespace fx
