// Fixture: catch (...) with no rethrow/capture swallows the error.
// Expected: error-swallow at line 10.
#include "gansec/error.hpp"

namespace fixture {

inline int swallow(int (*risky)()) {
  try {
    return risky();
  } catch (...) {
    return -1;
  }
}

}  // namespace fixture
