// Fixture: a serve-style ring pop that allocates per window — the exact
// regression the streaming runtime's hot-path regions exist to prevent.
// Expected: hotpath-alloc at lines 12, 13.
#include <vector>

namespace fixture {

// gansec-lint: hot-path
inline bool pop_window(const double* slot, std::size_t length,
                       std::vector<std::vector<double>>& sink) {
  // Copying the window into a fresh vector heap-allocates every pop.
  std::vector<double> window(slot, slot + length);
  sink.push_back(window);
  return true;
}
// gansec-lint: end-hot-path

}  // namespace fixture
