// Fixture: library code must throw gansec::Error subclasses.
// Expected: error-type at lines 8, 9.
#include <stdexcept>

namespace fixture {

inline void bad_throws(int which) {
  if (which == 0) throw std::runtime_error("fixture: boom");
  if (which == 1) throw "fixture: a string literal is not an error type";
}

}  // namespace fixture
