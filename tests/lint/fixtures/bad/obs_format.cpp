// Fixture: literal names that are not dot-namespaced lowercase.
// Expected: obs-name-format at lines 8, 9.
#include "gansec/obs/metrics.hpp"

namespace fixture {

inline void record() {
  obs::counter("FixtureHits").add();
  obs::gauge("nodots").set(1.0);
}

}  // namespace fixture
