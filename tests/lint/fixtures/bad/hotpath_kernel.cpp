// Fixture: allocating Matrix value calls where a `_into` kernel exists.
// Expected: hotpath-kernel at lines 9, 10.
#include "gansec/math/matrix.hpp"

namespace fixture {

// gansec-lint: hot-path
inline gansec::math::Matrix bad(const gansec::math::Matrix& a) {
  gansec::math::Matrix t = a.transposed();
  return gansec::math::Matrix::matmul(a, t);
}
// gansec-lint: end-hot-path

}  // namespace fixture
