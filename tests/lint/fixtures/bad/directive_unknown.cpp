// Fixture: malformed directives. Expected: lint-directive at lines
// 7 (unknown directive), 9 (allow of an unknown rule), 11 (end without
// begin), plus line 13 (hot-path never closed).
#include <cstddef>

namespace fixture {
// gansec-lint: frobnicate

// gansec-lint: allow(not-a-rule)
inline std::size_t noop() { return 0; }
// gansec-lint: end-hot-path

// gansec-lint: hot-path
inline std::size_t still_open() { return 1; }

}  // namespace fixture
