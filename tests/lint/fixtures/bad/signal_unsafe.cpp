// Fixture: every async-signal-unsafe construct the lint must catch
// inside a signal-context region. Expected: signal-unsafe at lines
// 14, 15, 16, 17, 18, 19, 20, 21.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

struct Oops {};
inline std::mutex g_mu;  // declared outside the region on purpose

// gansec-lint: signal-context
inline void bad_handler(int, char* buf) {
  int* leak = new int(7);
  if (leak == nullptr) throw Oops{};
  void* heap = std::malloc(32);
  auto owned = std::make_unique<int>(3);
  g_mu.lock();
  std::mutex local;
  GANSEC_LOG_INFO("tick from a signal handler");
  std::snprintf(buf, 8, "x");
  static_cast<void>(heap);
}
// gansec-lint: end-signal-context
