// Fixture: a metric name built at runtime defeats the manifest
// cross-check. Expected: obs-name-literal at line 8.
#include "gansec/obs/metrics.hpp"

namespace fixture {

inline void record(const std::string& scope) {
  obs::counter(scope + ".hits").add();
}

}  // namespace fixture
