// Fixture: every flavor of hot-path allocation the lint must catch.
// Expected: hotpath-alloc at lines 10, 11, 12, 13.
#include <cstdlib>
#include <vector>

namespace fixture {

// gansec-lint: hot-path
inline float* bad_alloc_calls(std::vector<float>& sink) {
  float* raw = new float[16];
  void* c = std::malloc(64);
  std::vector<float> local(16, 0.0F);
  sink.push_back(1.0F);
  static_cast<void>(c);
  static_cast<void>(local);
  return raw;
}
// gansec-lint: end-hot-path

}  // namespace fixture
