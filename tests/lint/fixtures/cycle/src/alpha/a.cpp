// Fixture: half of an alpha -> beta -> alpha include cycle between two
// modules the DAG does not know (unknown modules skip the layer check but
// still feed cycle detection). Expected (with b.cpp): layer-cycle.
#include "gansec/beta/b.hpp"

int fixture_cycle_a() { return 0; }
