// Fixture: second half of the alpha <-> beta cycle.
#include "gansec/alpha/a.hpp"

int fixture_cycle_b() { return 0; }
