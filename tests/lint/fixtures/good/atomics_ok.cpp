// atomics-ordering clean shape: odd stamp, release fence, relaxed
// payload stores, release commit store; reader acquires the stamp.
#include <atomic>

namespace fx {

std::atomic<unsigned> stamp{0};
std::atomic<unsigned> payload{0};

void publish(unsigned value) {
  // gansec-lint: seqlock(writer)
  stamp.store(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  payload.store(value, std::memory_order_relaxed);
  stamp.store(2, std::memory_order_release);
  // gansec-lint: end-seqlock
}

unsigned snapshot() {
  // gansec-lint: seqlock(reader)
  const unsigned s1 = stamp.load(std::memory_order_acquire);
  const unsigned value = payload.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  const unsigned s2 = stamp.load(std::memory_order_relaxed);
  // gansec-lint: end-seqlock
  return s1 == s2 ? value : 0U;
}

}  // namespace fx
