// Fixture: the incident crash-dump pattern — preallocated path and
// provenance buffers, atomic ring reads, manual digit formatting, and
// raw write(2). Mirrors obs/incident.cpp's signal path. Expected
// diagnostics: none.
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>

namespace fixture {

inline char g_path[256];
inline char g_provenance[512];
inline std::atomic<bool> g_armed{false};
inline std::atomic<std::uint64_t> g_events[64];

// gansec-lint: signal-context
inline void crash_dump(int sig) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  ::write(fd, g_provenance, sizeof(g_provenance));
  char digits[20];
  int n = 0;
  auto v = static_cast<std::uint64_t>(sig);
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) ::write(fd, &digits[--n], 1);
  for (const std::atomic<std::uint64_t>& slot : g_events) {
    const std::uint64_t bits = slot.load(std::memory_order_relaxed);
    ::write(fd, &bits, sizeof(bits));
  }
  ::close(fd);
}
// gansec-lint: end-signal-context

}  // namespace fixture
