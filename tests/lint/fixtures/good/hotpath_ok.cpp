// Fixture: a compliant hot-path region — destination-passing kernels,
// caller-owned buffers, no heap traffic. Expected diagnostics: none.
#include "gansec/math/kernels.hpp"

namespace fixture {

// gansec-lint: hot-path
void step(gansec::math::Matrix& out, const gansec::math::Matrix& a,
          const gansec::math::Matrix& b, std::vector<float>& scratch) {
  gansec::math::matmul_into(out, a, b);
  gansec::math::hadamard_into(out, out, b);
  scratch.resize(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) scratch[i] = out.data()[i];
}
// gansec-lint: end-hot-path

}  // namespace fixture
