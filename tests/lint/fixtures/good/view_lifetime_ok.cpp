// view-lifetime clean shapes: a producer returning its own borrow (its
// contract), and views of caller-owned storage leaving the frame.
namespace fx {

struct Series {
  const float* data_view() const { return buffer; }
  float buffer[8] = {};
};

const float* caller_owned(Series& series) {
  return series.data_view();
}

const float* pass_through(Series& series) {
  const float* view = series.data_view();
  return view;
}

}  // namespace fx
