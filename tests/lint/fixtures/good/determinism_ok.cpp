// Fixture: randomness derived from the run seed (math::Rng) is the
// compliant pattern. Expected diagnostics: none.
#include "gansec/math/rng.hpp"

namespace fixture {

inline float draw(gansec::math::Rng& rng) { return rng.uniform(0.0F, 1.0F); }

}  // namespace fixture
