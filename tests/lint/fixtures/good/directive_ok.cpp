// Fixture: well-formed directives — a paired hot-path region, an allow()
// suppressing a violation on the same line, and an allow() on the line
// above its violation. Expected diagnostics: none (2 suppressions used).
#include <stdexcept>

namespace fixture {

// gansec-lint: hot-path
inline float identity(float v) { return v; }
// gansec-lint: end-hot-path

inline void suppressed(int which) {
  if (which == 0) {
    throw std::runtime_error("boom");  // gansec-lint: allow(error-type)
  }
  if (which == 1) {
    // gansec-lint: allow(error-type)
    throw std::runtime_error("boom again");
  }
}

}  // namespace fixture
