// Fixture: compliant error discipline — catch (...) that rethrows, and
// gansec::Error subclasses thrown. Expected diagnostics: none.
#include "gansec/error.hpp"

namespace fixture {

inline void guarded(bool bad) {
  try {
    if (bad) throw gansec::InvalidArgumentError("fixture: bad input");
  } catch (...) {
    throw;
  }
}

}  // namespace fixture
