// Fixture: a compliant serve-style hot path — the SPSC ring's push/pop
// shape: atomic sequence handshakes and moves into preallocated slots,
// no heap traffic. Expected diagnostics: none.
#include <atomic>
#include <cstdint>
#include <utility>

namespace fixture {

struct Slot {
  std::atomic<std::uint64_t> sequence{0};
  double value = 0.0;
};

// gansec-lint: hot-path
inline bool try_push(Slot* slots, std::uint64_t mask,
                     std::atomic<std::uint64_t>& tail, double&& value) {
  std::uint64_t pos = tail.load(std::memory_order_relaxed);
  Slot& slot = slots[pos & mask];
  const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
  if (seq != pos) return false;
  if (!tail.compare_exchange_weak(pos, pos + 1,
                                  std::memory_order_relaxed)) {
    return false;
  }
  slot.value = std::move(value);
  slot.sequence.store(pos + 1, std::memory_order_release);
  return true;
}
// gansec-lint: end-hot-path

}  // namespace fixture
