// Fixture: a compliant signal-context region — preallocated slots,
// atomics, errno save/restore, and the async-signal-safe libc subset.
// Expected diagnostics: none.
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <execinfo.h>

namespace fixture {

inline std::atomic<std::uint64_t> g_cursor{0};
inline std::uint64_t g_slots[256];

// gansec-lint: signal-context
inline void handler(int) {
  const int saved_errno = errno;
  const std::uint64_t slot = g_cursor.fetch_add(1, std::memory_order_relaxed);
  if (slot < 256) {
    void* frames[8];
    const int depth = backtrace(frames, 8);
    g_slots[slot] = static_cast<std::uint64_t>(depth);
  }
  errno = saved_errno;
}
// gansec-lint: end-signal-context

}  // namespace fixture
