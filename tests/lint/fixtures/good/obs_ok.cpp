// Fixture: literal, dot-namespaced metric names listed in the manifest
// (fixtures/manifest_good.txt). Expected diagnostics: none.
#include "gansec/obs/metrics.hpp"

namespace fixture {

inline void record() {
  static gansec::obs::Counter& hits = obs::counter("fixture.good.hits");
  hits.add();
  obs::histogram("fixture.good.latency_us").observe(1.0);
}

}  // namespace fixture
