// Fixture: module nn (layer 3) including math (layer 2) is a downward
// edge the DAG allows. Expected diagnostics: none.
#include "gansec/math/matrix.hpp"

int fixture_layering_ok() { return 0; }
