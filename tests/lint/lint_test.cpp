// gansec_lint rule-engine tests, driven by the checked-in fixture corpus
// under tests/lint/fixtures/: every rule has a clean snippet that must
// produce no diagnostics and at least one bad snippet whose exact rule id,
// file, and line the linter must report. A final set of tests drives the
// real gansec_lint binary (GANSEC_LINT_PATH) and validates its
// gansec.lint.v1 JSON artifact with gansec_benchdiff --check.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gansec/obs/json.hpp"
#include "lint.hpp"

namespace {

using gansec::lint::Diagnostic;
using gansec::lint::Linter;
using gansec::lint::Options;

std::string fixture_path(const std::string& relative) {
  return std::string(GANSEC_LINT_FIXTURES) + "/" + relative;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Lints the given fixture files (relative to the corpus root) in one
/// Linter instance and returns it with finish() already applied.
Linter lint_fixtures(const std::vector<std::string>& relatives,
                     const std::string& manifest_relative = "") {
  Options options;
  if (!manifest_relative.empty()) {
    options.manifest_path = fixture_path(manifest_relative);
  }
  Linter linter(options);
  for (const std::string& rel : relatives) {
    const std::string path = fixture_path(rel);
    linter.check_file(path, read_file(path));
  }
  linter.finish();
  return linter;
}

struct ExpectedDiag {
  std::string rule;
  std::size_t line;
};

/// Asserts the diagnostics are exactly `expected`, in order, all
/// attributed to a file whose path ends with `file_suffix`.
void expect_exact(const Linter& linter,
                  const std::vector<ExpectedDiag>& expected,
                  const std::string& file_suffix) {
  const auto& diags = linter.diagnostics();
  ASSERT_EQ(diags.size(), expected.size()) << [&] {
    std::ostringstream os;
    for (const Diagnostic& d : diags) {
      os << "\n  " << d.file << ":" << d.line << ": [" << d.rule << "] "
         << d.message;
    }
    return os.str();
  }();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(diags[i].rule, expected[i].rule) << "diagnostic " << i;
    EXPECT_EQ(diags[i].line, expected[i].line) << "diagnostic " << i;
    EXPECT_TRUE(diags[i].file.size() >= file_suffix.size() &&
                diags[i].file.compare(diags[i].file.size() -
                                          file_suffix.size(),
                                      file_suffix.size(), file_suffix) == 0)
        << diags[i].file << " does not end with " << file_suffix;
  }
}

// ---- Layering ---------------------------------------------------------------

TEST(LintLayering, DownwardIncludeIsClean) {
  const Linter linter = lint_fixtures({"good/src/nn/layering_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintLayering, UpwardIncludeIsFlagged) {
  const Linter linter = lint_fixtures({"bad/src/nn/layering_upward.cpp"});
  expect_exact(linter, {{"layering", 3}}, "layering_upward.cpp");
}

TEST(LintLayering, LateralIncludeIsFlagged) {
  const Linter linter = lint_fixtures({"bad/src/stats/layering_lateral.cpp"});
  expect_exact(linter, {{"layering", 3}}, "layering_lateral.cpp");
}

TEST(LintLayering, ModuleCycleIsDetected) {
  const Linter linter =
      lint_fixtures({"cycle/src/alpha/a.cpp", "cycle/src/beta/b.cpp"});
  const auto& diags = linter.diagnostics();
  ASSERT_EQ(diags.size(), 1U);
  EXPECT_EQ(diags[0].rule, "layer-cycle");
  EXPECT_NE(diags[0].message.find("alpha"), std::string::npos);
  EXPECT_NE(diags[0].message.find("beta"), std::string::npos);
}

TEST(LintLayering, AcyclicUnknownModulesAreClean) {
  // alpha -> beta alone (no reverse edge) must not report a cycle.
  const Linter linter = lint_fixtures({"cycle/src/alpha/a.cpp"});
  expect_exact(linter, {}, "");
}

// ---- Hot-path allocation discipline -----------------------------------------

TEST(LintHotPath, CompliantRegionIsClean) {
  const Linter linter = lint_fixtures({"good/hotpath_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintHotPath, AllocationsAreFlagged) {
  const Linter linter = lint_fixtures({"bad/hotpath_alloc.cpp"});
  expect_exact(linter,
               {{"hotpath-alloc", 10},
                {"hotpath-alloc", 11},
                {"hotpath-alloc", 12},
                {"hotpath-alloc", 13}},
               "hotpath_alloc.cpp");
}

TEST(LintHotPath, StdFunctionIsFlagged) {
  const Linter linter = lint_fixtures({"bad/hotpath_function.cpp"});
  expect_exact(linter, {{"hotpath-function", 8}}, "hotpath_function.cpp");
}

TEST(LintHotPath, ValueKernelCallsAreFlagged) {
  const Linter linter = lint_fixtures({"bad/hotpath_kernel.cpp"});
  expect_exact(linter, {{"hotpath-kernel", 9}, {"hotpath-kernel", 10}},
               "hotpath_kernel.cpp");
}

TEST(LintHotPath, ServeRingShapeIsClean) {
  // The streaming runtime's per-window path (atomic sequence handshakes +
  // moves into preallocated ring slots) must lint clean as written.
  const Linter linter = lint_fixtures({"good/serve_hotpath_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintHotPath, ServeRingAllocationsAreFlagged) {
  const Linter linter = lint_fixtures({"bad/serve_hotpath_ring.cpp"});
  expect_exact(linter, {{"hotpath-alloc", 12}, {"hotpath-alloc", 13}},
               "serve_hotpath_ring.cpp");
}

// ---- Determinism ------------------------------------------------------------

TEST(LintDeterminism, SeededRngIsClean) {
  const Linter linter = lint_fixtures({"good/determinism_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintDeterminism, BannedEntropySourcesAreFlagged) {
  const Linter linter = lint_fixtures({"bad/determinism_rng.cpp"});
  expect_exact(linter,
               {{"determinism-rng", 10},
                {"determinism-rng", 11},
                {"determinism-rng", 12},
                {"determinism-rng", 13}},
               "determinism_rng.cpp");
}

TEST(LintDeterminism, UnorderedIterationIsFlagged) {
  const Linter linter = lint_fixtures({"bad/determinism_unordered.cpp"});
  expect_exact(linter,
               {{"determinism-unordered", 11}, {"determinism-unordered", 14}},
               "determinism_unordered.cpp");
}

// ---- Observability hygiene --------------------------------------------------

TEST(LintObs, LiteralNamesListedInManifestAreClean) {
  const Linter linter =
      lint_fixtures({"good/obs_ok.cpp"}, "manifest_good.txt");
  expect_exact(linter, {}, "");
}

TEST(LintObs, DynamicNameIsFlagged) {
  const Linter linter = lint_fixtures({"bad/obs_literal.cpp"});
  expect_exact(linter, {{"obs-name-literal", 8}}, "obs_literal.cpp");
}

TEST(LintObs, MalformedNamesAreFlagged) {
  const Linter linter = lint_fixtures({"bad/obs_format.cpp"});
  expect_exact(linter, {{"obs-name-format", 8}, {"obs-name-format", 9}},
               "obs_format.cpp");
}

TEST(LintObs, UnlistedRegistrationIsFlagged) {
  const Linter linter = lint_fixtures(
      {"good/obs_ok.cpp", "bad/obs_manifest.cpp"}, "manifest_good.txt");
  expect_exact(linter, {{"obs-manifest", 8}}, "obs_manifest.cpp");
}

TEST(LintObs, StaleManifestEntryIsFlagged) {
  const Linter linter =
      lint_fixtures({"good/obs_ok.cpp"}, "manifest_stale.txt");
  expect_exact(linter, {{"obs-manifest", 4}}, "manifest_stale.txt");
}

TEST(LintObs, MalformedManifestIsFlagged) {
  const Linter linter =
      lint_fixtures({"good/obs_ok.cpp"}, "manifest_bad.txt");
  // Lines 3 and 4 are malformed; with no valid entries left, both of
  // obs_ok.cpp's registrations are unlisted.
  const auto& diags = linter.diagnostics();
  ASSERT_EQ(diags.size(), 4U);
  for (const Diagnostic& d : diags) EXPECT_EQ(d.rule, "obs-manifest");
  EXPECT_EQ(diags[0].line, 3U);
  EXPECT_EQ(diags[1].line, 4U);
}

// ---- Signal-context async-signal-safety -------------------------------------

TEST(LintSignal, CompliantHandlerIsClean) {
  const Linter linter = lint_fixtures({"good/signal_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintSignal, UnsafeConstructsAreFlagged) {
  const Linter linter = lint_fixtures({"bad/signal_unsafe.cpp"});
  expect_exact(linter,
               {{"signal-unsafe", 14},
                {"signal-unsafe", 15},
                {"signal-unsafe", 16},
                {"signal-unsafe", 17},
                {"signal-unsafe", 18},
                {"signal-unsafe", 19},
                {"signal-unsafe", 20},
                {"signal-unsafe", 21}},
               "signal_unsafe.cpp");
}

TEST(LintSignal, IncidentDumpPatternIsClean) {
  // The obs/incident.cpp crash path: preallocated buffers, atomics,
  // manual formatting, raw write(2) — nothing for the rule to flag.
  const Linter linter = lint_fixtures({"good/incident_dump_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintSignal, NaiveIncidentDumpIsFlagged) {
  // A crash dump written the obvious way: std::string for the path, a
  // lock around the file, stdio to format — every line is a bug in a
  // signal context and every line must be flagged.
  const Linter linter = lint_fixtures({"bad/incident_dump_unsafe.cpp"});
  expect_exact(linter,
               {{"signal-unsafe", 13},
                {"signal-unsafe", 14},
                {"signal-unsafe", 15},
                {"signal-unsafe", 16},
                {"signal-unsafe", 17},
                {"signal-unsafe", 18},
                {"signal-unsafe", 19}},
               "incident_dump_unsafe.cpp");
}

TEST(LintSignal, SameConstructOutsideRegionIsClean) {
  Linter linter(Options{});
  // Allocation is only a violation between the region markers.
  linter.check_file("src/obs/sample.cpp",
                    "inline int* before() { return new int(1); }\n"
                    "// gansec-lint: signal-context\n"
                    "inline void handler(int) {}\n"
                    "// gansec-lint: end-signal-context\n"
                    "inline int* after() { return new int(2); }\n");
  linter.finish();
  EXPECT_TRUE(linter.diagnostics().empty());
}

TEST(LintSignal, UnclosedRegionIsFlagged) {
  Linter linter(Options{});
  linter.check_file("src/obs/sample.cpp",
                    "// gansec-lint: signal-context\n"
                    "inline void handler(int) {}\n");
  linter.finish();
  const auto& diags = linter.diagnostics();
  ASSERT_EQ(diags.size(), 1U);
  EXPECT_EQ(diags[0].rule, "lint-directive");
  EXPECT_NE(diags[0].message.find("never closed"), std::string::npos);
}

TEST(LintSignal, AllowSuppressesInsideRegion) {
  Linter linter(Options{});
  linter.check_file(
      "src/obs/sample.cpp",
      "// gansec-lint: signal-context\n"
      "inline void handler(int) {\n"
      "  // gansec-lint: allow(signal-unsafe)\n"
      "  int* p = new int(1);\n"
      "  static_cast<void>(p);\n"
      "}\n"
      "// gansec-lint: end-signal-context\n");
  linter.finish();
  EXPECT_TRUE(linter.diagnostics().empty());
  EXPECT_EQ(linter.suppressions_used(), 1U);
}

// ---- Error discipline -------------------------------------------------------

TEST(LintErrors, RethrowingCatchAllIsClean) {
  const Linter linter = lint_fixtures({"good/error_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintErrors, SwallowedCatchAllIsFlagged) {
  const Linter linter = lint_fixtures({"bad/error_swallow.cpp"});
  expect_exact(linter, {{"error-swallow", 10}}, "error_swallow.cpp");
}

TEST(LintErrors, ForeignThrowTypesAreFlagged) {
  const Linter linter = lint_fixtures({"bad/error_type.cpp"});
  expect_exact(linter, {{"error-type", 8}, {"error-type", 9}},
               "error_type.cpp");
}

// ---- Directives and suppression ---------------------------------------------

TEST(LintDirectives, AllowSuppressesSameAndPrecedingLine) {
  const Linter linter = lint_fixtures({"good/directive_ok.cpp"});
  expect_exact(linter, {}, "");
  EXPECT_EQ(linter.suppressions_used(), 2U);
}

TEST(LintDirectives, MalformedDirectivesAreFlagged) {
  const Linter linter = lint_fixtures({"bad/directive_unknown.cpp"});
  expect_exact(linter,
               {{"lint-directive", 7},
                {"lint-directive", 9},
                {"lint-directive", 11},
                {"lint-directive", 13}},
               "directive_unknown.cpp");
}

TEST(LintDirectives, DirectiveInsideStringLiteralIsIgnored) {
  Linter linter(Options{});
  // The marker only counts inside comments; string content is inert.
  linter.check_file("tools/sample.cpp",
                    "const char* s = \"// gansec-lint: hot-path\";\n"
                    "int* leak = new int(3);\n");
  linter.finish();
  EXPECT_TRUE(linter.diagnostics().empty());
}

// ---- Lexer regressions ------------------------------------------------------

TEST(LintLexer, PrefixedRawStringLexesAsOneLiteral) {
  const auto tokens = gansec::lint::tokenize(
      "const char* k = u8R\"(new int inside \" quotes)\";");
  std::size_t strings = 0;
  for (const auto& t : tokens) {
    if (t.kind == gansec::lint::TokKind::kString) ++strings;
    EXPECT_NE(t.text, "new") << "raw-string body leaked into the stream";
  }
  EXPECT_EQ(strings, 1U);
}

TEST(LintLexer, DigitSeparatorsStayInOneNumber) {
  const auto tokens = gansec::lint::tokenize("const long n = 1'000'000;");
  bool found = false;
  for (const auto& t : tokens) {
    if (t.kind == gansec::lint::TokKind::kNumber && t.text == "1'000'000") {
      found = true;
    }
    EXPECT_NE(t.kind, gansec::lint::TokKind::kChar)
        << "separator swallowed as a char literal: " << t.text;
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, SplicedLineCommentSwallowsNextLine) {
  const auto tokens = gansec::lint::tokenize(
      "int a = 1; // spliced \\\nint* leak = new int(3);\nint c = 2;");
  for (const auto& t : tokens) {
    EXPECT_NE(t.text, "new") << "spliced comment line reached the rules";
    EXPECT_NE(t.text, "leak");
  }
}

TEST(LintLexer, HotPathRuleIgnoresRawStringContents) {
  Linter linter{Options{}};
  linter.check_file("src/nn/raw.cpp",
                    "// gansec-lint: hot-path\n"
                    "const char* k = R\"(v.push_back(new int))\";\n"
                    "// gansec-lint: end-hot-path\n");
  linter.finish();
  EXPECT_TRUE(linter.diagnostics().empty());
}

// ---- Interprocedural call-graph propagation ---------------------------------

TEST(LintCallGraph, DirectCalleeViolationCarriesChain) {
  const Linter linter = lint_fixtures({"callgraph/direct.cpp"});
  const auto& diags = linter.diagnostics();
  ASSERT_EQ(diags.size(), 1U);
  EXPECT_EQ(diags[0].rule, "hotpath-alloc");
  EXPECT_EQ(diags[0].line, 9U);
  ASSERT_EQ(diags[0].chain.size(), 2U);
  EXPECT_NE(diags[0].chain[0].find("fx::driver"), std::string::npos);
  EXPECT_NE(diags[0].chain[0].find(":14"), std::string::npos);
  EXPECT_NE(diags[0].chain[1].find("fx::helper"), std::string::npos);
  EXPECT_NE(diags[0].message.find("call chain: fx::driver"),
            std::string::npos);
}

TEST(LintCallGraph, TwoHopChainNamesEveryHop) {
  const Linter linter = lint_fixtures({"callgraph/transitive.cpp"});
  const auto& diags = linter.diagnostics();
  ASSERT_EQ(diags.size(), 1U);
  EXPECT_EQ(diags[0].rule, "hotpath-alloc");
  EXPECT_EQ(diags[0].line, 6U);
  ASSERT_EQ(diags[0].chain.size(), 3U);
  EXPECT_NE(diags[0].chain[0].find("fx::driver"), std::string::npos);
  EXPECT_NE(diags[0].chain[0].find(":15"), std::string::npos);
  EXPECT_NE(diags[0].chain[1].find("fx::middle"), std::string::npos);
  EXPECT_NE(diags[0].chain[1].find(":10"), std::string::npos);
  EXPECT_NE(diags[0].chain[2].find("fx::leaf"), std::string::npos);
}

TEST(LintCallGraph, VirtualEdgeIsOpaqueAndNotTraversed) {
  const Linter linter = lint_fixtures({"callgraph/opaque_virtual.cpp"});
  expect_exact(linter, {}, "");
  bool recorded = false;
  for (const auto& e : linter.call_edges()) {
    if (e.callee == "fx::Buffering::consume" && e.opaque &&
        e.opaque_reason == "virtual") {
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded) << "virtual edge missing from evidence";
}

TEST(LintCallGraph, FunctionObjectEdgeIsOpaqueAndNotTraversed) {
  const Linter linter = lint_fixtures({"callgraph/opaque_function.cpp"});
  expect_exact(linter, {}, "");
  bool recorded = false;
  for (const auto& e : linter.call_edges()) {
    if (e.caller == "fx::driver" && e.callee == "thunk" && e.opaque &&
        e.opaque_reason == "std::function") {
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded) << "std::function edge missing from evidence";
}

TEST(LintCallGraph, SignalContextPropagatesWithChains) {
  const Linter linter = lint_fixtures({"callgraph/signal_transitive.cpp"});
  const auto& diags = linter.diagnostics();
  ASSERT_EQ(diags.size(), 2U);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "signal-unsafe");
    ASSERT_EQ(d.chain.size(), 2U);
    EXPECT_NE(d.chain[0].find("fx::handler"), std::string::npos);
    EXPECT_NE(d.chain[0].find(":19"), std::string::npos);
    EXPECT_NE(d.chain[1].find("fx::log_state"), std::string::npos);
  }
  EXPECT_EQ(diags[0].line, 12U);
  EXPECT_EQ(diags[1].line, 14U);
}

TEST(LintCallGraph, ReachabilityEvidenceIsExported) {
  const Linter linter = lint_fixtures({"callgraph/direct.cpp"});
  bool reached = false;
  for (const auto& r : linter.reachability()) {
    if (r.constraint == "hot-path" && r.function == "fx::helper") {
      reached = true;
      ASSERT_EQ(r.chain.size(), 1U);
      EXPECT_NE(r.chain[0].find("fx::driver"), std::string::npos);
    }
  }
  EXPECT_TRUE(reached);
  bool helper_hot = false;
  for (const auto& f : linter.functions()) {
    if (f.qualified == "fx::helper") helper_hot = f.hot;
  }
  EXPECT_TRUE(helper_hot);
}

// ---- view-lifetime ----------------------------------------------------------

TEST(LintViewLifetime, CompliantShapesAreClean) {
  const Linter linter = lint_fixtures({"good/view_lifetime_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintViewLifetime, EscapingViewsAreFlagged) {
  const Linter linter = lint_fixtures({"bad/view_lifetime.cpp"});
  expect_exact(linter,
               {{"view-lifetime", 22},
                {"view-lifetime", 28},
                {"view-lifetime", 34}},
               "view_lifetime.cpp");
}

// ---- atomics-ordering -------------------------------------------------------

TEST(LintAtomics, CompliantSeqlockIsClean) {
  const Linter linter = lint_fixtures({"good/atomics_ok.cpp"});
  expect_exact(linter, {}, "");
}

TEST(LintAtomics, OrderingViolationsAreFlagged) {
  const Linter linter = lint_fixtures({"bad/atomics_order.cpp"});
  expect_exact(linter,
               {{"atomics-ordering", 14},
                {"atomics-ordering", 19},
                {"atomics-ordering", 29}},
               "atomics_order.cpp");
}

// ---- unused-allow -----------------------------------------------------------

TEST(LintUnusedAllow, StaleSuppressionIsFlagged) {
  const Linter linter = lint_fixtures({"bad/unused_allow.cpp"});
  expect_exact(linter, {{"unused-allow", 5}}, "unused_allow.cpp");
}

TEST(LintUnusedAllow, EarnedSuppressionIsNotFlagged) {
  Linter linter{Options{}};
  linter.check_file("src/nn/allowed.cpp",
                    "// gansec-lint: hot-path\n"
                    "// gansec-lint: allow(hotpath-alloc)\n"
                    "int* keep = new int(1);\n"
                    "// gansec-lint: end-hot-path\n");
  linter.finish();
  EXPECT_TRUE(linter.diagnostics().empty());
  EXPECT_EQ(linter.suppressions_used(), 1U);
}

// ---- CLI + artifact round trip ----------------------------------------------

std::string temp_path(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

int exit_code(int system_status) {
#if defined(_WIN32)
  return system_status;
#else
  return (system_status >> 8) & 0xFF;
#endif
}

TEST(LintCli, CleanCorpusProducesValidArtifact) {
  const std::string artifact = temp_path("gansec_lint_fixture_artifact.json");
  const std::string command = std::string(GANSEC_LINT_PATH) + " --manifest " +
                              fixture_path("manifest_good.txt") + " --json " +
                              artifact + " --quiet " + fixture_path("good");
  ASSERT_EQ(exit_code(std::system(command.c_str())), 0)
      << "command failed: " << command;

  // The artifact is schema-valid JSON with bench-style provenance...
  const gansec::obs::JsonValue root = gansec::obs::parse_json_file(artifact);
  ASSERT_TRUE(root.is_object());
  const auto* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "gansec.lint.v1");
  const auto* violations =
      root.find_path({"metrics", "lint.violations", "value"});
  ASSERT_NE(violations, nullptr);
  EXPECT_EQ(violations->as_number(), 0.0);
  const auto* sha = root.find_path({"build", "git_sha"});
  ASSERT_NE(sha, nullptr);
  EXPECT_TRUE(sha->is_string());

  // ...that the perf-gate tool accepts as-is.
  const std::string check =
      std::string(GANSEC_BENCHDIFF_PATH) + " --check " + artifact;
  EXPECT_EQ(exit_code(std::system(check.c_str())), 0)
      << "command failed: " << check;
}

TEST(LintCli, BadCorpusExitsOne) {
  const std::string out = temp_path("gansec_lint_fixture_bad.txt");
  const std::string command = std::string(GANSEC_LINT_PATH) + " " +
                              fixture_path("bad") + " > " + out;
  ASSERT_EQ(exit_code(std::system(command.c_str())), 1)
      << "command: " << command;
  const std::string text = read_file(out);
  for (const char* rule :
       {"hotpath-alloc", "determinism-rng", "error-type", "layering"}) {
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
