#!/usr/bin/env bash
# quickcheck — the full local correctness-gate matrix in one command.
#
#   tools/quickcheck.sh [--jobs N] [--skip-tsan] [--skip-asan]
#
# Runs, per preset (release, asan, tsan): configure, build, and the full
# ctest suite; then the `lint` and `bench-smoke` ctest labels on the
# release tree (plus the lint artifact gate: the repo-wide run must emit
# schema-valid gansec.lint.v1 and gansec.lintdb.v1 artifacts accepted by
# gansec_benchdiff --check), the full-scale profiler
# overhead/symbolization gate with
# a benchdiff against the committed baseline, the streaming-monitor
# gate, the incident-forensics gate (live /incidentz plus a kill -SEGV
# crash that must leave a valid gansec.incident.v1 bundle), and the
# `ckpt` checkpoint-format battery on the asan tree (the format's
# corruption guarantees are proven under ASan). Prints a pass/fail
# summary table and exits non-zero if anything failed. Designed to be
# what you run before pushing.
set -u

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_ASAN=1
RUN_TSAN=1
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    --skip-asan) RUN_ASAN=0; shift ;;
    --skip-tsan) RUN_TSAN=0; shift ;;
    *) echo "quickcheck: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

STEPS=()
RESULTS=()
SECONDS_SPENT=()

run_step() {
  # run_step <name> <cmd...>
  local name="$1"; shift
  local start end
  echo
  echo "==== ${name}: $*"
  start=$(date +%s)
  if "$@"; then
    RESULTS+=("PASS")
  else
    RESULTS+=("FAIL")
  fi
  end=$(date +%s)
  STEPS+=("${name}")
  SECONDS_SPENT+=("$((end - start))")
}

preset_suite() {
  # preset_suite <preset>
  local preset="$1"
  run_step "${preset}/configure" cmake --preset "${preset}"
  run_step "${preset}/build" cmake --build --preset "${preset}" -j "${JOBS}"
  run_step "${preset}/test" ctest --preset "${preset}" -j "${JOBS}"
}

preset_suite release
[ "${RUN_ASAN}" = 1 ] && preset_suite asan
[ "${RUN_TSAN}" = 1 ] && preset_suite tsan

# Label gates run on the release tree (the lint and bench binaries there).
run_step "lint-label" ctest --test-dir build -L lint --output-on-failure

# Lint artifact gate: one repo-wide run emitting both the violations
# artifact and the interprocedural call-graph database. The jq probes pin
# the members downstream tooling keys on: a clean check, and call-graph
# evidence that actually reached both constraint families (opaque edges
# included), so an engine regression that silently stops propagating
# fails here rather than by linting "clean".
lint_artifact_gate() {
  local out=build/lint-out
  mkdir -p "${out}"
  build/tools/gansec_lint --manifest tools/metrics_manifest.txt \
    --json "${out}/lint.json" --lintdb "${out}/lintdb.json" --quiet \
    include src || return 1
  jq -e '.schema == "gansec.lint.v1" and .checks.clean == true' \
    "${out}/lint.json" >/dev/null || {
    echo "lint: lint.json is not a clean gansec.lint.v1 artifact" >&2
    return 1; }
  jq -e '.schema == "gansec.lintdb.v1"
         and .checks.clean == true
         and (.functions | length) > 0
         and (.edges | length) > 0
         and ([.edges[] | select(.opaque)] | length) > 0
         and ([.reachability[] | select(.constraint == "hot-path")]
              | length) > 0
         and ([.reachability[] | select(.constraint == "signal-context")]
              | length) > 0' \
    "${out}/lintdb.json" >/dev/null || {
    echo "lint: lintdb.json is not a populated gansec.lintdb.v1 artifact" >&2
    return 1; }
  build/tools/gansec_benchdiff --check "${out}/lint.json" || return 1
  build/tools/gansec_benchdiff --check "${out}/lintdb.json" || return 1
}
run_step "lint-artifacts" lint_artifact_gate
run_step "bench-smoke" ctest --test-dir build -L bench-smoke --output-on-failure

# Live-introspection gate, two legs.
#
# Leg 1: smoke-run the CLI with the profiler on and the OpenMetrics
# endpoint up; scrape /healthz + /metrics while it runs and validate the
# profile artifact's schema afterwards.
#
# Leg 2: the profiled train-step pair at full scale. bench_perf_core
# itself exits non-zero when profiling overhead exceeds 2% or fewer than
# 80% of frames symbolize; the fresh artifact is then schema-checked and
# diffed against the committed baseline (generous threshold — hosts
# differ; the gate numbers themselves are absolute).
profile_gate() {
  local out=build/profile-out port=19464
  mkdir -p "${out}"
  build/tools/gansec sweep --samples 6 --bins 8 --window 0.05 \
    --iterations 40 --threads 2 \
    --expose "${port}" --profile "${out}/sweep.folded" \
    > "${out}/sweep.stdout" 2> "${out}/sweep.stderr" &
  local cli_pid=$!
  local scraped=""
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:${port}/healthz" >/dev/null 2>&1; then
      scraped="$(curl -sf "http://127.0.0.1:${port}/metrics")" && break
    fi
    kill -0 "${cli_pid}" 2>/dev/null || break
    sleep 0.1
  done
  if ! wait "${cli_pid}"; then
    echo "profile: CLI smoke run failed" >&2
    cat "${out}/sweep.stderr" >&2
    return 1
  fi
  if [ -z "${scraped}" ]; then
    echo "profile: never scraped /metrics from the live CLI" >&2
    return 1
  fi
  case "${scraped}" in
    *"# EOF"*) : ;;
    *) echo "profile: /metrics is missing the OpenMetrics terminator" >&2
       return 1 ;;
  esac
  case "${scraped}" in
    *proc_rss_bytes*) : ;;
    *) echo "profile: /metrics is missing proc_rss_bytes" >&2; return 1 ;;
  esac
  [ -s "${out}/sweep.folded" ] || {
    echo "profile: empty folded profile" >&2; return 1; }
  jq -e '.schema == "gansec.profile.v1" and .samples >= 0' \
    "${out}/sweep.folded.json" >/dev/null || {
    echo "profile: sweep.folded.json is not a gansec.profile.v1 artifact" >&2
    return 1; }

  GANSEC_BENCH_OUT="${out}" GANSEC_BENCH_CACHE_DIR=build/profile-cache \
    build/bench/bench_perf_core \
    "--benchmark_filter=^BM_CganTrainStep(Profiled)?\$" \
    --benchmark_min_time=2 || return 1
  build/tools/gansec_benchdiff --check "${out}/BENCH_perf_core.json" \
    || return 1
  build/tools/gansec_benchdiff --threshold 0.5 \
    bench/baselines/BENCH_perf_core.json "${out}/BENCH_perf_core.json"
}
run_step "profile" profile_gate

# Streaming-monitor gate, two legs.
#
# Leg 1: smoke-run `gansec serve` (train a tiny model first, then drive a
# rate-limited loadgen through the online monitor) with the OpenMetrics
# endpoint up; scrape /healthz + /metrics while it runs and require the
# serve.* instruments to be present.
#
# Leg 2: the saturation bench in smoke mode, schema-checked and diffed
# against the committed baseline (generous threshold — hosts differ; the
# bench's own checks, e.g. sustains_8_streams, are absolute).
serve_gate() {
  local out=build/serve-out port=19465
  mkdir -p "${out}"
  build/tools/gansec train --model "${out}/serve.gsm" \
    --samples 6 --bins 8 --window 0.05 --iterations 20 \
    > "${out}/train.stdout" 2> "${out}/train.stderr" || {
    echo "serve: tiny training run failed" >&2
    cat "${out}/train.stderr" >&2
    return 1; }
  build/tools/gansec serve --model "${out}/serve.gsm" \
    --samples 6 --bins 8 --window 0.05 \
    --streams 3 --windows 30 --rate 10 --calibrate 5 \
    --expose "${port}" \
    > "${out}/serve.stdout" 2> "${out}/serve.stderr" &
  local cli_pid=$!
  local scraped=""
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:${port}/healthz" >/dev/null 2>&1; then
      scraped="$(curl -sf "http://127.0.0.1:${port}/metrics")" \
        && case "${scraped}" in
             *serve_windows_scored_total*) break ;;
           esac
    fi
    kill -0 "${cli_pid}" 2>/dev/null || break
    sleep 0.1
  done
  if ! wait "${cli_pid}"; then
    echo "serve: online monitor run failed" >&2
    cat "${out}/serve.stderr" >&2
    return 1
  fi
  if [ -z "${scraped}" ]; then
    echo "serve: never scraped /metrics from the live monitor" >&2
    return 1
  fi
  case "${scraped}" in
    *"# EOF"*) : ;;
    *) echo "serve: /metrics is missing the OpenMetrics terminator" >&2
       return 1 ;;
  esac
  case "${scraped}" in
    *serve_windows_scored_total*) : ;;
    *) echo "serve: /metrics is missing serve_windows_scored_total" >&2
       return 1 ;;
  esac
  case "${scraped}" in
    *serve_latency_us*) : ;;
    *) echo "serve: /metrics is missing serve_latency_us" >&2; return 1 ;;
  esac
  grep -q "total:" "${out}/serve.stdout" || {
    echo "serve: summary table missing from stdout" >&2; return 1; }

  GANSEC_BENCH_SMOKE=1 GANSEC_BENCH_OUT="${out}" \
    GANSEC_BENCH_CACHE_DIR=build/serve-cache \
    build/bench/bench_serve || return 1
  build/tools/gansec_benchdiff --check "${out}/BENCH_serve.json" || return 1
  build/tools/gansec_benchdiff --threshold 0.5 \
    bench/baselines/BENCH_serve.json "${out}/BENCH_serve.json"
}
run_step "serve" serve_gate

# Incident-forensics gate, two legs.
#
# Leg 1: /incidentz on a live run — the monitor serves an on-demand
# gansec.incident.v1 bundle over HTTP while working.
#
# Leg 2: the black-box contract itself — kill -SEGV mid-run and require
# a schema-valid bundle with a non-empty trace-clock-ordered timeline,
# accepted by both gansec_benchdiff --check and gansec_incident.
incident_gate() {
  local out=build/incident-out port=19466
  mkdir -p "${out}"
  build/tools/gansec sweep --samples 6 --bins 8 --window 0.05 \
    --iterations 40 --threads 2 \
    --expose "${port}" --incident-out "${out}/demand.json" \
    > "${out}/live.stdout" 2> "${out}/live.stderr" &
  local cli_pid=$!
  local live=""
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:${port}/healthz" >/dev/null 2>&1; then
      live="$(curl -sf "http://127.0.0.1:${port}/incidentz")" && break
    fi
    kill -0 "${cli_pid}" 2>/dev/null || break
    sleep 0.1
  done
  if ! wait "${cli_pid}"; then
    echo "incident: live CLI run failed" >&2
    cat "${out}/live.stderr" >&2
    return 1
  fi
  [ -n "${live}" ] || {
    echo "incident: never fetched /incidentz from the live run" >&2
    return 1; }
  printf '%s' "${live}" | jq -e \
    '.schema == "gansec.incident.v1" and (.events | length) > 0' \
    >/dev/null || {
    echo "incident: /incidentz is not a gansec.incident.v1 bundle" >&2
    return 1; }

  rm -f "${out}/crash.json"
  build/tools/gansec sweep --samples 6 --bins 8 --window 0.05 \
    --iterations 2000 --threads 2 --incident-out "${out}/crash.json" \
    > "${out}/crash.stdout" 2> "${out}/crash.stderr" &
  local crash_pid=$!
  sleep 2
  kill -SEGV "${crash_pid}" 2>/dev/null
  wait "${crash_pid}"
  local rc=$?
  [ "${rc}" -eq 139 ] || {
    echo "incident: expected SIGSEGV death (139), got ${rc}" >&2
    return 1; }
  [ -s "${out}/crash.json" ] || {
    echo "incident: crash left no bundle behind" >&2; return 1; }
  build/tools/gansec_benchdiff --check "${out}/crash.json" || return 1
  build/tools/gansec_incident summarize "${out}/crash.json" || return 1
}
run_step "incident" incident_gate

# The checkpoint battery's acceptance bar is "typed errors, never UB" —
# run it under ASan when that tree exists, else fall back to release.
if [ "${RUN_ASAN}" = 1 ]; then
  run_step "ckpt-asan" ctest --test-dir build-asan -L ckpt --output-on-failure
else
  run_step "ckpt-label" ctest --test-dir build -L ckpt --output-on-failure
fi

echo
echo "==== quickcheck summary"
printf '%-20s %-6s %8s\n' "step" "result" "seconds"
FAILURES=0
for i in "${!STEPS[@]}"; do
  printf '%-20s %-6s %8s\n' "${STEPS[$i]}" "${RESULTS[$i]}" "${SECONDS_SPENT[$i]}"
  [ "${RESULTS[$i]}" = "FAIL" ] && FAILURES=$((FAILURES + 1))
done
echo
if [ "${FAILURES}" -gt 0 ]; then
  echo "quickcheck: ${FAILURES} step(s) FAILED"
  exit 1
fi
echo "quickcheck: all steps passed"
