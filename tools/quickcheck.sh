#!/usr/bin/env bash
# quickcheck — the full local correctness-gate matrix in one command.
#
#   tools/quickcheck.sh [--jobs N] [--skip-tsan] [--skip-asan]
#
# Runs, per preset (release, asan, tsan): configure, build, and the full
# ctest suite; then the `lint` and `bench-smoke` ctest labels on the
# release tree and the `ckpt` checkpoint-format battery on the asan tree
# (the format's corruption guarantees are proven under ASan). Prints a
# pass/fail summary table and exits non-zero if anything failed. Designed
# to be what you run before pushing.
set -u

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_ASAN=1
RUN_TSAN=1
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    --skip-asan) RUN_ASAN=0; shift ;;
    --skip-tsan) RUN_TSAN=0; shift ;;
    *) echo "quickcheck: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

STEPS=()
RESULTS=()
SECONDS_SPENT=()

run_step() {
  # run_step <name> <cmd...>
  local name="$1"; shift
  local start end
  echo
  echo "==== ${name}: $*"
  start=$(date +%s)
  if "$@"; then
    RESULTS+=("PASS")
  else
    RESULTS+=("FAIL")
  fi
  end=$(date +%s)
  STEPS+=("${name}")
  SECONDS_SPENT+=("$((end - start))")
}

preset_suite() {
  # preset_suite <preset>
  local preset="$1"
  run_step "${preset}/configure" cmake --preset "${preset}"
  run_step "${preset}/build" cmake --build --preset "${preset}" -j "${JOBS}"
  run_step "${preset}/test" ctest --preset "${preset}" -j "${JOBS}"
}

preset_suite release
[ "${RUN_ASAN}" = 1 ] && preset_suite asan
[ "${RUN_TSAN}" = 1 ] && preset_suite tsan

# Label gates run on the release tree (the lint and bench binaries there).
run_step "lint-label" ctest --test-dir build -L lint --output-on-failure
run_step "bench-smoke" ctest --test-dir build -L bench-smoke --output-on-failure
# The checkpoint battery's acceptance bar is "typed errors, never UB" —
# run it under ASan when that tree exists, else fall back to release.
if [ "${RUN_ASAN}" = 1 ]; then
  run_step "ckpt-asan" ctest --test-dir build-asan -L ckpt --output-on-failure
else
  run_step "ckpt-label" ctest --test-dir build -L ckpt --output-on-failure
fi

echo
echo "==== quickcheck summary"
printf '%-20s %-6s %8s\n' "step" "result" "seconds"
FAILURES=0
for i in "${!STEPS[@]}"; do
  printf '%-20s %-6s %8s\n' "${STEPS[$i]}" "${RESULTS[$i]}" "${SECONDS_SPENT[$i]}"
  [ "${RESULTS[$i]}" = "FAIL" ] && FAILURES=$((FAILURES + 1))
done
echo
if [ "${FAILURES}" -gt 0 ]; then
  echo "quickcheck: ${FAILURES} step(s) FAILED"
  exit 1
fi
echo "quickcheck: all steps passed"
