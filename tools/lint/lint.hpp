// gansec_lint rule engine: project-invariant static analysis.
//
// The linter checks conventions that generic tools cannot express because
// they are *this repo's* contracts (see DESIGN.md "Static analysis &
// invariants" for the catalog and rationale):
//
//   layering              upward/lateral #include against the declared
//                         module DAG obs -> exec -> math -> {nn,stats,dsp}
//                         -> {gan,cpps,am} -> {security,baseline} -> core
//   layer-cycle           cyclic include edges between modules the DAG
//                         does not rank (fixture/unknown modules)
//   hotpath-alloc         heap allocation inside a `// gansec-lint:
//                         hot-path` region OR inside any function
//                         transitively reachable from one through the
//                         call graph (new/malloc/make_unique, owning
//                         container construction, push_back/emplace_back)
//   hotpath-function      std::function inside a hot-path region or a
//                         hot-path-reachable function
//   hotpath-kernel        allocating Matrix value-API call (no `_into`
//                         sibling used) inside a hot-path region or a
//                         hot-path-reachable function
//   determinism-rng       std::random_device, rand()/srand(), time()-based
//                         seeding anywhere in library code
//   determinism-unordered iteration over std::unordered_{map,set} (their
//                         order is implementation-defined, so it must not
//                         feed serialized output or metrics dumps)
//   obs-name-literal      metric/span name that is not a string literal
//   obs-name-format       metric/span name that is not dot-namespaced
//                         lowercase ([a-z0-9_]+(\.[a-z0-9_]+)+)
//   obs-manifest          metric/span literal missing from the manifest,
//                         or a stale manifest entry no source registers
//   error-swallow         catch (...) that neither rethrows nor captures
//                         std::current_exception
//   error-type            throwing a std:: type or a literal instead of a
//                         gansec::Error subclass
//   signal-unsafe         non-async-signal-safe construct (allocation,
//                         stdio, locks, throw, logging, owning std::
//                         types) inside a `// gansec-lint: signal-context`
//                         region or a signal-context-reachable function
//   view-lifetime         a non-owning view (`*_view` producer result)
//                         returned out of the function that owns its
//                         storage — a local receiver, a by-value
//                         parameter, or a local Workspace::Scope
//   atomics-ordering      a `// gansec-lint: seqlock(writer|reader)`
//                         region whose commit store is relaxed, that
//                         lacks its release/acquire half, or that uses
//                         memory_order_consume
//   unused-allow          an `allow(rule)` directive that suppresses
//                         nothing (stale suppression)
//   lint-directive        malformed `// gansec-lint:` directive (unknown
//                         verb or unknown rule name in allow())
//
// Interprocedural analysis: check_file() additionally builds a
// per-translation-unit symbol table (function definitions with
// namespace/class-qualified names) and records every call site;
// finish() links them into a repo-level call graph, marks
// virtual/std::function edges opaque, and transitively propagates the
// hot-path and signal-context constraints from annotated regions through
// all reachable callees. Violations found in a reachable-but-unannotated
// helper carry the full root -> violation call chain in
// Diagnostic::chain.
//
// Any diagnostic is suppressible at its site with
// `// gansec-lint: allow(<rule>[, <rule>...])` on the same or preceding
// line. Hot-path regions open with `// gansec-lint: hot-path` and close
// with `// gansec-lint: end-hot-path`; signal-context regions open with
// `// gansec-lint: signal-context` and close with
// `// gansec-lint: end-signal-context`; seqlock regions open with
// `// gansec-lint: seqlock(writer)` or `// gansec-lint: seqlock(reader)`
// and close with `// gansec-lint: end-seqlock`.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace gansec::lint {

struct Diagnostic {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  /// For interprocedural findings: the root -> violation call chain,
  /// outermost (annotated region) first. Empty for lexical findings.
  std::vector<std::string> chain;
};

/// One function definition in the repo-level symbol table.
struct FunctionInfo {
  std::string qualified;  ///< namespace/class-qualified ("a::B::f")
  std::string file;
  std::size_t line = 0;
  bool is_virtual = false;
  bool hot = false;     ///< hot-path constrained (lexical or inherited)
  bool signal = false;  ///< signal-context constrained
};

/// One observed call edge. Opaque edges (virtual dispatch, calls through
/// std::function objects) are recorded as evidence but never traversed
/// by the propagation.
struct CallEdge {
  std::string caller;  ///< qualified caller, or "<file-scope>" fallback
  std::string callee;  ///< callee text as written ("a::f" or "f")
  std::string file;
  std::size_t line = 0;
  bool opaque = false;
  std::string opaque_reason;  ///< "virtual" | "std::function" when opaque
};

/// Why a function is constrained: the chain of call sites from an
/// annotated region down to it.
struct ReachEntry {
  std::string constraint;  ///< "hot-path" | "signal-context"
  std::string function;    ///< qualified name of the constrained function
  std::vector<std::string> chain;  ///< "qualified (file:line)" hops
};

struct Options {
  /// Path to the metric/span manifest (`<kind> <name>` lines). Empty
  /// disables the obs-manifest cross-check (obs-name-* still run).
  std::string manifest_path;
};

class Linter {
 public:
  explicit Linter(Options options);

  /// Lints one file. `path` is the name diagnostics carry (as given on
  /// the command line); `source` is the file contents.
  void check_file(const std::string& path, std::string_view source);

  /// Cross-file checks: call-graph construction, transitive hot-path /
  /// signal-context propagation, unused-suppression detection, manifest
  /// reconciliation and module-cycle detection. Call once, after the
  /// last check_file().
  void finish();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t files_checked() const { return files_checked_; }
  std::size_t suppressions_used() const { return suppressions_used_; }

  /// Call-graph evidence for the gansec.lintdb.v1 artifact. Valid after
  /// finish().
  const std::vector<FunctionInfo>& functions() const { return function_infos_; }
  const std::vector<CallEdge>& call_edges() const { return call_edge_infos_; }
  const std::vector<ReachEntry>& reachability() const { return reach_entries_; }

  /// True when `rule` is one of the rule ids listed above.
  static bool known_rule(std::string_view rule);

 private:
  struct Registration {  // one literal metric/span name in the source
    std::string kind;    // counter | gauge | histogram | series | span
    std::string name;
    std::string file;
    std::size_t line = 0;
  };
  struct IncludeEdge {  // first observed include site for a module pair
    std::string from;
    std::string to;
    std::string file;
    std::size_t line = 0;
  };
  struct Region {
    std::size_t begin_line = 0;
    std::size_t end_line = 0;  // inclusive; SIZE_MAX when unclosed
  };
  struct SeqRegion {
    std::size_t begin_line = 0;
    std::size_t end_line = 0;
    bool writer = false;
  };
  struct FileState {  // everything finish() needs to re-visit a file
    std::string path;
    std::vector<Token> sig;  ///< significant tokens (no comments/preproc)
    std::vector<Region> hot_regions;
    std::vector<Region> signal_regions;
    std::map<std::size_t, std::map<std::string, bool>> allows;  // line->rule->used
  };
  struct FunctionDef {
    std::string name;       ///< unqualified (last identifier)
    std::string qualified;  ///< scope-qualified
    std::size_t file_index = 0;
    std::size_t line = 0;
    std::size_t body_begin = 0;  ///< sig index of the opening '{'
    std::size_t body_end = 0;    ///< sig index of the matching '}'
    bool is_virtual = false;
    bool returns_indirection = false;  ///< return type carries & or *
    /// Declared [[noreturn]]: the function is an error path by
    /// construction (it throws or aborts), so hot-path propagation does
    /// not descend into it. Signal-context propagation still does —
    /// reaching a thrower from a handler is itself the bug.
    bool is_noreturn = false;
  };
  struct CallSite {
    std::size_t caller = static_cast<std::size_t>(-1);  ///< functions_ index
    std::string callee_text;  ///< as written, "a::b::f" or "f"
    std::size_t file_index = 0;
    std::size_t line = 0;
    bool via_function_object = false;  ///< call through a std::function var
    /// For member calls: the receiver's declared type when the scanner
    /// could recover it ("Counter" for `clamps.add()` where `clamps` is an
    /// `obs::Counter&`). Empty means unknown — resolution falls back to
    /// matching every definition with the same unqualified name.
    std::string receiver_type;
    /// Call appears in a `static` local's initializer: it executes once,
    /// so hot-path propagation does not traverse it (signal-context still
    /// does — the init guard can take a lock inside a handler).
    bool in_static_init = false;
    /// Call through `.` or `->`. When the receiver's type is unknown and
    /// the name resolves into more than one class, the edge is ambiguous
    /// and treated as opaque rather than fanned out to every candidate.
    bool member_call = false;
  };

  void scan_symbols(std::size_t file_index, std::vector<Diagnostic>& pending);
  void check_atomics(std::size_t file_index,
                     const std::vector<SeqRegion>& seq_regions,
                     std::vector<Diagnostic>& pending);
  void propagate_constraints();
  void emit_unused_allows();
  void check_manifest();
  void check_cycles();
  bool apply_suppression(FileState& state, Diagnostic& d);

  Options options_;
  std::vector<Diagnostic> diagnostics_;
  std::vector<Registration> registrations_;
  std::vector<IncludeEdge> edges_;
  std::vector<FileState> files_;
  std::vector<FunctionDef> functions_;
  std::vector<CallSite> calls_;
  std::set<std::string> virtual_names_;  ///< names ever declared virtual
  std::set<std::string> class_names_;    ///< class/struct/union names seen
  std::vector<FunctionInfo> function_infos_;
  std::vector<CallEdge> call_edge_infos_;
  std::vector<ReachEntry> reach_entries_;
  std::size_t files_checked_ = 0;
  std::size_t suppressions_used_ = 0;
};

}  // namespace gansec::lint
