// gansec_lint rule engine: project-invariant static analysis.
//
// The linter checks conventions that generic tools cannot express because
// they are *this repo's* contracts (see DESIGN.md "Static analysis &
// invariants" for the catalog and rationale):
//
//   layering              upward/lateral #include against the declared
//                         module DAG obs -> exec -> math -> {nn,stats,dsp}
//                         -> {gan,cpps,am} -> {security,baseline} -> core
//   layer-cycle           cyclic include edges between modules the DAG
//                         does not rank (fixture/unknown modules)
//   hotpath-alloc         heap allocation inside a `// gansec-lint:
//                         hot-path` region (new/malloc/make_unique, owning
//                         container construction, push_back/emplace_back)
//   hotpath-function      std::function inside a hot-path region
//   hotpath-kernel        allocating Matrix value-API call (no `_into`
//                         sibling used) inside a hot-path region
//   determinism-rng       std::random_device, rand()/srand(), time()-based
//                         seeding anywhere in library code
//   determinism-unordered iteration over std::unordered_{map,set} (their
//                         order is implementation-defined, so it must not
//                         feed serialized output or metrics dumps)
//   obs-name-literal      metric/span name that is not a string literal
//   obs-name-format       metric/span name that is not dot-namespaced
//                         lowercase ([a-z0-9_]+(\.[a-z0-9_]+)+)
//   obs-manifest          metric/span literal missing from the manifest,
//                         or a stale manifest entry no source registers
//   error-swallow         catch (...) that neither rethrows nor captures
//                         std::current_exception
//   error-type            throwing a std:: type or a literal instead of a
//                         gansec::Error subclass
//   signal-unsafe         non-async-signal-safe construct (allocation,
//                         stdio, locks, throw, logging, owning std::
//                         types) inside a `// gansec-lint: signal-context`
//                         region — the profiler's SIGPROF handler path
//   lint-directive        malformed `// gansec-lint:` directive (unknown
//                         verb or unknown rule name in allow())
//
// Any diagnostic is suppressible at its site with
// `// gansec-lint: allow(<rule>[, <rule>...])` on the same or preceding
// line. Hot-path regions open with `// gansec-lint: hot-path` and close
// with `// gansec-lint: end-hot-path`; signal-context regions open with
// `// gansec-lint: signal-context` and close with
// `// gansec-lint: end-signal-context`.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace gansec::lint {

struct Diagnostic {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

struct Options {
  /// Path to the metric/span manifest (`<kind> <name>` lines). Empty
  /// disables the obs-manifest cross-check (obs-name-* still run).
  std::string manifest_path;
};

class Linter {
 public:
  explicit Linter(Options options);

  /// Lints one file. `path` is the name diagnostics carry (as given on
  /// the command line); `source` is the file contents.
  void check_file(const std::string& path, std::string_view source);

  /// Cross-file checks: manifest reconciliation and module-cycle
  /// detection. Call once, after the last check_file().
  void finish();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t files_checked() const { return files_checked_; }
  std::size_t suppressions_used() const { return suppressions_used_; }

  /// True when `rule` is one of the rule ids listed above.
  static bool known_rule(std::string_view rule);

 private:
  struct Registration {  // one literal metric/span name in the source
    std::string kind;    // counter | gauge | histogram | series | span
    std::string name;
    std::string file;
    std::size_t line = 0;
  };
  struct IncludeEdge {  // first observed include site for a module pair
    std::string from;
    std::string to;
    std::string file;
    std::size_t line = 0;
  };

  Options options_;
  std::vector<Diagnostic> diagnostics_;
  std::vector<Registration> registrations_;
  std::vector<IncludeEdge> edges_;
  std::size_t files_checked_ = 0;
  std::size_t suppressions_used_ = 0;
};

}  // namespace gansec::lint
