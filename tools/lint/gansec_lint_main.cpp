// gansec_lint — project-invariant static analysis over the gansec tree.
//
// Usage:
//   gansec_lint [--manifest FILE] [--json OUT] [--lintdb OUT] [--quiet]
//               <path>...
//
// Paths are files or directories (recursed for .hpp/.h/.cpp/.cc/.cxx).
// Diagnostics print as "file:line: [rule] message". With --json, the run
// also writes a schema-versioned "gansec.lint.v1" artifact carrying the
// same provenance members as bench artifacts (build, host, wall_ms) plus
// the full violations list — gansec_benchdiff --check validates it, and
// two lint artifacts diff like bench artifacts (violations are
// lower_is_better). With --lintdb, the run additionally writes a
// "gansec.lintdb.v1" artifact: the repo call graph (functions, edges
// with opaque markers) and the hot-path/signal-context reachability
// evidence with full root -> function call chains, so a finding's chain
// can be traced without re-running the analysis. benchdiff --check
// accepts it too.
//
// Exit codes: 0 = clean, 1 = violations, 2 = usage/IO error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gansec/error.hpp"
#include "gansec/obs/json.hpp"
#include "gansec/obs/report.hpp"
#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using gansec::lint::Diagnostic;
using gansec::lint::Linter;

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr,
               "gansec_lint: %s\n"
               "usage: gansec_lint [--manifest FILE] [--json OUT] "
               "[--lintdb OUT] [--quiet] <path>...\n",
               message);
  std::exit(2);
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

/// Expands files/directories into a sorted, de-duplicated file list so
/// diagnostics are emitted in a stable order on every host.
std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
    } else {
      throw gansec::IoError("gansec_lint: no such file or directory: " +
                            root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw gansec::IoError("gansec_lint: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string artifact_json(const Linter& linter, double wall_ms) {
  using gansec::obs::json_escape;
  using gansec::obs::json_number;
  const auto unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string json = "{\"schema\":\"gansec.lint.v1\"";
  json += ",\"name\":\"gansec_lint\"";
  json += ",\"created_unix_ms\":" + std::to_string(unix_ms);
  json += ",\"build\":" +
          gansec::obs::build_info_json(gansec::obs::build_info());
  const gansec::obs::HostInfo host = gansec::obs::host_info();
  json += ",\"host\":{\"hostname\":\"" + json_escape(host.hostname) +
          "\",\"os\":\"" + json_escape(host.os) +
          "\",\"hardware_concurrency\":" +
          std::to_string(host.hardware_concurrency) + '}';
  json += ",\"wall_ms\":" + json_number(wall_ms);
  json += ",\"metrics\":{";
  json += "\"lint.files\":{\"value\":" +
          std::to_string(linter.files_checked()) +
          ",\"direction\":\"two_sided\"}";
  json += ",\"lint.violations\":{\"value\":" +
          std::to_string(linter.diagnostics().size()) +
          ",\"direction\":\"lower_is_better\"}";
  json += ",\"lint.suppressions\":{\"value\":" +
          std::to_string(linter.suppressions_used()) +
          ",\"direction\":\"lower_is_better\"}";
  json += "},\"checks\":{\"clean\":";
  json += linter.diagnostics().empty() ? "true" : "false";
  json += "},\"violations\":[";
  for (std::size_t i = 0; i < linter.diagnostics().size(); ++i) {
    const Diagnostic& d = linter.diagnostics()[i];
    if (i != 0) json += ',';
    json += "{\"rule\":\"" + json_escape(d.rule) + "\",\"file\":\"" +
            json_escape(d.file) + "\",\"line\":" + std::to_string(d.line) +
            ",\"message\":\"" + json_escape(d.message) + "\"}";
  }
  json += "]}";
  std::string error;
  if (!gansec::obs::json_valid(json, &error)) {
    throw gansec::InvalidArgumentError(
        "gansec_lint: artifact is not valid JSON: " + error);
  }
  return json;
}

std::string lintdb_json(const Linter& linter, double wall_ms) {
  using gansec::obs::json_escape;
  using gansec::obs::json_number;
  const auto unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::size_t opaque_edges = 0;
  for (const auto& e : linter.call_edges()) {
    if (e.opaque) ++opaque_edges;
  }
  std::size_t hot_reachable = 0;
  std::size_t signal_reachable = 0;
  for (const auto& r : linter.reachability()) {
    if (r.constraint == "hot-path") {
      ++hot_reachable;
    } else {
      ++signal_reachable;
    }
  }
  std::string json = "{\"schema\":\"gansec.lintdb.v1\"";
  json += ",\"name\":\"gansec_lint\"";
  json += ",\"created_unix_ms\":" + std::to_string(unix_ms);
  json += ",\"build\":" +
          gansec::obs::build_info_json(gansec::obs::build_info());
  const gansec::obs::HostInfo host = gansec::obs::host_info();
  json += ",\"host\":{\"hostname\":\"" + json_escape(host.hostname) +
          "\",\"os\":\"" + json_escape(host.os) +
          "\",\"hardware_concurrency\":" +
          std::to_string(host.hardware_concurrency) + '}';
  json += ",\"wall_ms\":" + json_number(wall_ms);
  json += ",\"metrics\":{";
  const auto metric = [&](const char* key, std::size_t value, bool first) {
    json += first ? "" : ",";
    json += "\"" + std::string(key) + "\":{\"value\":" +
            std::to_string(value) + ",\"direction\":\"two_sided\"}";
  };
  metric("lintdb.functions", linter.functions().size(), true);
  metric("lintdb.call_edges", linter.call_edges().size(), false);
  metric("lintdb.opaque_edges", opaque_edges, false);
  metric("lintdb.hot_reachable", hot_reachable, false);
  metric("lintdb.signal_reachable", signal_reachable, false);
  json += "},\"checks\":{\"clean\":";
  json += linter.diagnostics().empty() ? "true" : "false";
  json += "},\"functions\":[";
  for (std::size_t i = 0; i < linter.functions().size(); ++i) {
    const auto& f = linter.functions()[i];
    if (i != 0) json += ',';
    json += "{\"qualified\":\"" + json_escape(f.qualified) +
            "\",\"file\":\"" + json_escape(f.file) +
            "\",\"line\":" + std::to_string(f.line) +
            ",\"virtual\":" + (f.is_virtual ? "true" : "false") +
            ",\"hot\":" + (f.hot ? "true" : "false") +
            ",\"signal\":" + (f.signal ? "true" : "false") + '}';
  }
  json += "],\"edges\":[";
  for (std::size_t i = 0; i < linter.call_edges().size(); ++i) {
    const auto& e = linter.call_edges()[i];
    if (i != 0) json += ',';
    json += "{\"caller\":\"" + json_escape(e.caller) +
            "\",\"callee\":\"" + json_escape(e.callee) +
            "\",\"file\":\"" + json_escape(e.file) +
            "\",\"line\":" + std::to_string(e.line) +
            ",\"opaque\":" + (e.opaque ? "true" : "false");
    if (e.opaque) {
      json += ",\"opaque_reason\":\"" + json_escape(e.opaque_reason) + '"';
    }
    json += '}';
  }
  json += "],\"reachability\":[";
  for (std::size_t i = 0; i < linter.reachability().size(); ++i) {
    const auto& r = linter.reachability()[i];
    if (i != 0) json += ',';
    json += "{\"constraint\":\"" + json_escape(r.constraint) +
            "\",\"function\":\"" + json_escape(r.function) +
            "\",\"chain\":[";
    for (std::size_t h = 0; h < r.chain.size(); ++h) {
      if (h != 0) json += ',';
      json += '"' + json_escape(r.chain[h]) + '"';
    }
    json += "]}";
  }
  json += "]}";
  std::string error;
  if (!gansec::obs::json_valid(json, &error)) {
    throw gansec::InvalidArgumentError(
        "gansec_lint: lintdb artifact is not valid JSON: " + error);
  }
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string json_path;
  std::string lintdb_path;
  bool quiet = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--manifest") {
      if (i + 1 >= argc) usage_error("--manifest needs a file");
      manifest_path = argv[++i];
    } else if (arg == "--json") {
      if (i + 1 >= argc) usage_error("--json needs a file");
      json_path = argv[++i];
    } else if (arg == "--lintdb") {
      if (i + 1 >= argc) usage_error("--lintdb needs a file");
      lintdb_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help");
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown flag");
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) usage_error("expected at least one path");

  try {
    const auto start = std::chrono::steady_clock::now();
    Linter linter(gansec::lint::Options{manifest_path});
    for (const std::string& file : collect_files(roots)) {
      linter.check_file(file, read_file(file));
    }
    linter.finish();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (!quiet) {
      for (const Diagnostic& d : linter.diagnostics()) {
        std::printf("%s:%zu: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
      }
      std::printf(
          "gansec_lint: %zu file(s), %zu violation(s), %zu suppression(s)\n",
          linter.files_checked(), linter.diagnostics().size(),
          linter.suppressions_used());
    }
    if (!json_path.empty()) {
      const fs::path out(json_path);
      if (out.has_parent_path()) fs::create_directories(out.parent_path());
      std::ofstream file(out);
      if (!file) {
        throw gansec::IoError("gansec_lint: cannot write " + json_path);
      }
      file << artifact_json(linter, wall_ms) << '\n';
    }
    if (!lintdb_path.empty()) {
      const fs::path out(lintdb_path);
      if (out.has_parent_path()) fs::create_directories(out.parent_path());
      std::ofstream file(out);
      if (!file) {
        throw gansec::IoError("gansec_lint: cannot write " + lintdb_path);
      }
      file << lintdb_json(linter, wall_ms) << '\n';
    }
    return linter.diagnostics().empty() ? 0 : 1;
  } catch (const gansec::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gansec_lint: %s\n", e.what());
    return 2;
  }
}
