// Minimal C++ lexer for gansec_lint.
//
// This is deliberately not a compiler front end: gansec_lint checks
// project conventions (include layering, hot-path allocation discipline,
// determinism bans, observability naming, error discipline) that are all
// expressible over a token stream plus comment directives. Tokenizing —
// instead of regexing raw text — is what keeps the rules from firing
// inside string literals and comments, and lets rules reason about
// adjacency ("identifier followed by '('", "previous significant token is
// '::'") without false matches.
//
// Recognized token kinds: identifiers/keywords, numbers, string literals
// (including raw strings), character literals, preprocessor directives
// (one token per logical line, continuations folded), punctuation
// (one token per character except the multi-char operators the rules care
// about), and comments. Comments are preserved as tokens because lint
// directives (`// gansec-lint: ...`) live in them.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace gansec::lint {

enum class TokKind {
  kIdentifier,   // foo, std, operator keywords, ...
  kNumber,       // 0x1F, 1.5e3, 42
  kString,       // "..." or R"(...)" (prefix included in text)
  kChar,         // 'a'
  kPreprocessor, // whole logical #... line, continuations folded
  kComment,      // // ... or /* ... */ (delimiters included in text)
  kPunct,        // everything else, one char except :: < > etc. kept as-is
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based line of the token's first character
};

/// Tokenizes `source`. Never throws on malformed input: unterminated
/// literals/comments are closed at end of file so lint can still run over
/// fixture snippets and mid-edit sources.
inline std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();
  std::size_t line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto peek = [&](std::size_t off) -> char {
    return i + off < n ? source[i + off] : '\0';
  };
  auto is_ident_start = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  auto is_ident_char = [&](char c) {
    return is_ident_start(c) || (c >= '0' && c <= '9');
  };
  auto count_lines = [&](std::string_view text) {
    for (char c : text) {
      if (c == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    const std::size_t tok_line = line;
    // Comments. A line comment ending in a backslash splices the next
    // physical line into itself (translation phase 2 runs before comment
    // recognition), so the "code" on that next line never reaches the
    // compiler — the lexer must agree or rules fire on dead text.
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i;
      while (j < n) {
        if (source[j] == '\n') {
          std::size_t back = j;
          while (back > i && source[back - 1] == '\r') --back;
          if (back > i && source[back - 1] == '\\') {
            ++j;  // spliced: the comment continues on the next line
            continue;
          }
          break;
        }
        ++j;
      }
      std::string_view text = source.substr(i, j - i);
      tokens.push_back({TokKind::kComment, std::string(text), tok_line});
      count_lines(text);
      i = j;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) ++j;
      j = (j + 1 < n) ? j + 2 : n;
      std::string_view text = source.substr(i, j - i);
      tokens.push_back({TokKind::kComment, std::string(text), tok_line});
      count_lines(text);
      i = j;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive: '#' first on the line; swallow continuations.
    if (c == '#' && at_line_start) {
      std::size_t j = i;
      while (j < n) {
        if (source[j] == '\n' && (j == 0 || source[j - 1] != '\\')) break;
        ++j;
      }
      std::string_view text = source.substr(i, j - i);
      tokens.push_back({TokKind::kPreprocessor, std::string(text), tok_line});
      count_lines(text);
      i = j;
      continue;
    }
    at_line_start = false;
    // String literals with encoding prefixes (u8R"(...)", LR"(...)",
    // u8"...", L"...", ...). The prefix must be consumed together with the
    // literal: lexed separately, the prefixed raw string's body would be
    // scanned as an ordinary quoted string and terminate at the first '"'
    // inside it, leaking raw-string content into the token stream.
    {
      std::size_t prefix = 0;  // length of the encoding prefix, if any
      if ((c == 'u' && peek(1) == '8')) {
        prefix = 2;
      } else if (c == 'u' || c == 'U' || c == 'L') {
        prefix = 1;
      }
      const bool raw = peek(prefix) == 'R' && peek(prefix + 1) == '"';
      const bool plain = prefix > 0 && peek(prefix) == '"';
      if ((c == 'R' && peek(1) == '"') || raw || plain) {
        const std::size_t rp = (c == 'R') ? 0 : prefix;
        if (raw || c == 'R') {
          // Raw string literal: [prefix]R"delim( ... )delim".
          std::size_t j = i + rp + 2;
          std::string delim;
          while (j < n && source[j] != '(' && source[j] != '\n' &&
                 delim.size() < 16) {
            delim += source[j++];
          }
          if (j < n && source[j] == '(') {
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = source.find(closer, j + 1);
            j = end == std::string_view::npos ? n : end + closer.size();
            std::string_view text = source.substr(i, j - i);
            tokens.push_back({TokKind::kString, std::string(text), tok_line});
            count_lines(text);
            i = j;
            continue;
          }
          // Not actually a raw string (R then junk); fall through as ident.
        } else {
          // Prefixed ordinary literal: consume the prefix, then scan the
          // quoted body below exactly like an unprefixed one.
          std::size_t j = i + prefix + 1;
          while (j < n && source[j] != '"' && source[j] != '\n') {
            j += (source[j] == '\\' && j + 1 < n) ? 2 : 1;
          }
          if (j < n && source[j] == '"') ++j;
          tokens.push_back({TokKind::kString,
                            std::string(source.substr(i, j - i)), tok_line});
          i = j;
          continue;
        }
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && source[j] != quote && source[j] != '\n') {
        j += (source[j] == '\\' && j + 1 < n) ? 2 : 1;
      }
      if (j < n && source[j] == quote) ++j;
      tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                        std::string(source.substr(i, j - i)), tok_line});
      i = j;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(source[j])) ++j;
      tokens.push_back({TokKind::kIdentifier,
                        std::string(source.substr(i, j - i)), tok_line});
      i = j;
      continue;
    }
    if (c >= '0' && c <= '9') {
      std::size_t j = i + 1;
      // pp-number: digits, idents, dots, exponent signs, and digit
      // separators (1'000'000) glue together. A separator only counts
      // when a digit/ident char follows — otherwise 1' starts a char
      // literal and must not be swallowed.
      while (j < n &&
             (is_ident_char(source[j]) || source[j] == '.' ||
              (source[j] == '\'' && j + 1 < n &&
               is_ident_char(source[j + 1])) ||
              ((source[j] == '+' || source[j] == '-') &&
               (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      tokens.push_back({TokKind::kNumber,
                        std::string(source.substr(i, j - i)), tok_line});
      i = j;
      continue;
    }
    // Multi-char punctuation the rules rely on; everything else single-char.
    if (c == ':' && peek(1) == ':') {
      tokens.push_back({TokKind::kPunct, "::", tok_line});
      i += 2;
      continue;
    }
    if (c == '.' && peek(1) == '.' && peek(2) == '.') {
      tokens.push_back({TokKind::kPunct, "...", tok_line});
      i += 3;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      tokens.push_back({TokKind::kPunct, "->", tok_line});
      i += 2;
      continue;
    }
    if (c == '&' && peek(1) == '&') {
      tokens.push_back({TokKind::kPunct, "&&", tok_line});
      i += 2;
      continue;
    }
    tokens.push_back({TokKind::kPunct, std::string(1, c), tok_line});
    ++i;
  }
  return tokens;
}

}  // namespace gansec::lint
