#include "lint.hpp"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace gansec::lint {

namespace {

// ---- Layering DAG ----------------------------------------------------------
//
// The declared module DAG (DESIGN.md "Static analysis & invariants"):
//
//   obs -> exec -> math -> {nn, stats, dsp} -> {gan, cpps, am}
//       -> {security, baseline, model} -> {core, serve}
//
// A module may include its own headers and any strictly lower layer.
// Lateral includes (same layer, different module) and upward includes are
// violations. `exec` is a virtual module: the execution substrate
// (core/execution.hpp, core/thread_pool.hpp and their sources) lives under
// the core/ directory because its types are in namespace gansec::core, but
// the build layers it *below* math so the GEMM kernels can dispatch
// through it (see src/core/CMakeLists.txt).
struct LayerEntry {
  const char* module;
  int layer;
};

constexpr LayerEntry kLayers[] = {
    {"obs", 0},     {"exec", 1},     {"math", 2},     {"nn", 3},
    {"stats", 3},   {"dsp", 3},      {"gan", 4},      {"cpps", 4},
    {"am", 4},      {"security", 5}, {"baseline", 5}, {"model", 5},
    {"core", 6},    {"serve", 6},
};

// Declared intra-layer edges the DAG text above cannot express. am -> cpps
// mirrors gansec_am's PUBLIC link on gansec_cpps: the AM substrate builds
// the cpps::Architecture that Algorithm 1 consumes.
constexpr std::pair<const char*, const char*> kExtraEdges[] = {
    {"am", "cpps"},
};

int layer_of(std::string_view module) {
  for (const LayerEntry& e : kLayers) {
    if (module == e.module) return e.layer;
  }
  return -1;  // unknown module: exempt from the DAG, still cycle-checked
}

bool extra_edge_allowed(std::string_view from, std::string_view to) {
  for (const auto& [f, t] : kExtraEdges) {
    if (from == f && to == t) return true;
  }
  return false;
}

// Headers physically under core/ that belong to the virtual exec module.
bool is_exec_path(std::string_view path) {
  for (const char* stem :
       {"core/execution.hpp", "core/thread_pool.hpp", "core/execution.cpp",
        "core/thread_pool.cpp"}) {
    if (path.size() >= std::string_view(stem).size() &&
        path.substr(path.size() - std::string_view(stem).size()) == stem) {
      return true;
    }
  }
  return false;
}

/// Module of a scanned file: the component after "include/gansec/" or
/// "src/", empty for unlayered files (top-level headers, tools, tests).
std::string module_of_source(std::string_view path) {
  if (is_exec_path(path)) return "exec";
  const auto component_after = [&](std::string_view marker) -> std::string {
    const std::size_t at = path.rfind(marker);
    if (at == std::string_view::npos) return "";
    const std::size_t start = at + marker.size();
    const std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) return "";  // top-level file
    return std::string(path.substr(start, slash - start));
  };
  std::string mod = component_after("include/gansec/");
  if (!mod.empty()) return mod;
  return component_after("src/");
}

/// Module of an include target ("gansec/math/matrix.hpp" -> "math");
/// empty for top-level headers (gansec/error.hpp) which any layer may use.
std::string module_of_target(std::string_view include_path) {
  if (is_exec_path(include_path)) return "exec";
  constexpr std::string_view prefix = "gansec/";
  if (include_path.substr(0, prefix.size()) != prefix) return "";
  const std::string_view rest = include_path.substr(prefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

// ---- Token-set tables ------------------------------------------------------

const std::set<std::string_view> kOwningContainers = {
    "vector", "string", "wstring", "basic_string", "map", "multimap",
    "set", "multiset", "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "deque", "list", "forward_list", "stringstream",
    "ostringstream", "istringstream", "valarray",
};

const std::set<std::string_view> kAllocCalls = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared",
};

const std::set<std::string_view> kGrowthCalls = {"push_back", "emplace_back"};

// Matrix value-API members with destination-passing `_into` siblings (or a
// zero-allocation equivalent); calling them on a hot path re-allocates the
// result every iteration.
const std::set<std::string_view> kValueKernels = {
    "matmul", "matmul_transposed_a", "matmul_transposed_b", "hadamard",
    "hstack", "vstack", "map", "apply", "transposed", "slice_cols",
    "slice_rows", "gather_rows", "col_sums", "row_sums", "row", "from_rows",
    "identity",
};

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

const std::set<std::string_view> kMetricFns = {"counter", "gauge",
                                               "histogram", "series"};

// Calls that are not async-signal-safe (POSIX signal-safety(7)): heap
// allocation, stdio, and lock acquisition. Banned inside
// `// gansec-lint: signal-context` regions (the SIGPROF handler path).
const std::set<std::string_view> kSignalUnsafeCalls = {
    "malloc",   "calloc",  "realloc",     "free",    "aligned_alloc",
    "strdup",   "make_unique", "make_shared",
    "printf",   "fprintf", "sprintf",     "snprintf", "vsnprintf",
    "puts",     "fputs",   "fwrite",      "fopen",   "fclose",
};

// Lock/stream/owning std:: types whose mere use in a signal context is a
// bug: taking a lock can deadlock against the interrupted thread, and
// stream/string/container operations allocate.
const std::set<std::string_view> kSignalUnsafeStdTypes = {
    "mutex",         "recursive_mutex", "shared_mutex", "timed_mutex",
    "lock_guard",    "unique_lock",     "scoped_lock",  "shared_lock",
    "condition_variable", "condition_variable_any",
    "cout",          "cerr",            "clog",
    "string",        "ostringstream",   "stringstream", "vector",
    "function",
};

const char* const kKnownRules[] = {
    "layering",        "layer-cycle",      "hotpath-alloc",
    "hotpath-function", "hotpath-kernel",  "determinism-rng",
    "determinism-unordered", "obs-name-literal", "obs-name-format",
    "obs-manifest",    "error-swallow",    "error-type",
    "signal-unsafe",   "lint-directive",
};

/// Dot-namespaced lowercase: [a-z0-9_]+(\.[a-z0-9_]+)+ — at least two
/// segments so every name carries its subsystem namespace.
bool valid_metric_name(std::string_view name) {
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  return segments + 1 >= 2;
}

std::string strip_quotes(std::string_view literal) {
  if (literal.size() >= 2 && literal.front() == '"' &&
      literal.back() == '"') {
    return std::string(literal.substr(1, literal.size() - 2));
  }
  return std::string(literal);
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

struct HotRegion {
  std::size_t begin_line = 0;
  std::size_t end_line = 0;  // inclusive; SIZE_MAX when unclosed
};

}  // namespace

Linter::Linter(Options options) : options_(std::move(options)) {}

bool Linter::known_rule(std::string_view rule) {
  for (const char* r : kKnownRules) {
    if (rule == r) return true;
  }
  return false;
}

void Linter::check_file(const std::string& path, std::string_view source) {
  ++files_checked_;
  const std::vector<Token> tokens = tokenize(source);

  // ---- Pass 0: directives (allow map, hot-path regions) --------------------
  std::map<std::size_t, std::set<std::string>> allows;  // line -> rules
  std::vector<HotRegion> regions;
  std::vector<HotRegion> signal_regions;
  std::vector<Diagnostic> pending;
  const auto emit = [&](const char* rule, std::size_t line,
                        std::string message) {
    pending.push_back({rule, path, line, std::move(message)});
  };

  bool region_open = false;
  bool signal_open = false;
  for (const Token& tok : tokens) {
    if (tok.kind != TokKind::kComment) continue;
    const std::size_t at = tok.text.find("gansec-lint:");
    if (at == std::string::npos) continue;
    std::string body = trim(std::string_view(tok.text).substr(
        at + std::string_view("gansec-lint:").size()));
    // Block comments carry a trailing delimiter; line comments do not.
    if (body.size() >= 2 && body.substr(body.size() - 2) == "*/") {
      body = trim(std::string_view(body).substr(0, body.size() - 2));
    }
    if (body == "hot-path") {
      if (region_open) {
        emit("lint-directive", tok.line,
             "hot-path region opened while the previous one is still open");
      } else {
        regions.push_back({tok.line, static_cast<std::size_t>(-1)});
        region_open = true;
      }
    } else if (body == "end-hot-path") {
      if (!region_open) {
        emit("lint-directive", tok.line,
             "end-hot-path without a matching hot-path");
      } else {
        regions.back().end_line = tok.line;
        region_open = false;
      }
    } else if (body == "signal-context") {
      if (signal_open) {
        emit("lint-directive", tok.line,
             "signal-context region opened while the previous one is still "
             "open");
      } else {
        signal_regions.push_back({tok.line, static_cast<std::size_t>(-1)});
        signal_open = true;
      }
    } else if (body == "end-signal-context") {
      if (!signal_open) {
        emit("lint-directive", tok.line,
             "end-signal-context without a matching signal-context");
      } else {
        signal_regions.back().end_line = tok.line;
        signal_open = false;
      }
    } else if (body.size() > 7 && body.substr(0, 6) == "allow(" &&
               body.back() == ')') {
      std::stringstream list(body.substr(6, body.size() - 7));
      std::string rule;
      while (std::getline(list, rule, ',')) {
        rule = trim(rule);
        if (!known_rule(rule)) {
          emit("lint-directive", tok.line,
               "allow() names unknown rule '" + rule + "'");
          continue;
        }
        allows[tok.line].insert(rule);
      }
    } else {
      emit("lint-directive", tok.line,
           "unknown gansec-lint directive '" + body + "'");
    }
  }
  if (region_open) {
    emit("lint-directive", regions.back().begin_line,
         "hot-path region is never closed (missing end-hot-path)");
  }
  if (signal_open) {
    emit("lint-directive", signal_regions.back().begin_line,
         "signal-context region is never closed (missing "
         "end-signal-context)");
  }
  const auto in_hot_region = [&](std::size_t line) {
    for (const HotRegion& r : regions) {
      if (line >= r.begin_line && line <= r.end_line) return true;
    }
    return false;
  };
  const auto in_signal_region = [&](std::size_t line) {
    for (const HotRegion& r : signal_regions) {
      if (line >= r.begin_line && line <= r.end_line) return true;
    }
    return false;
  };

  // ---- Pass 1: layering (preprocessor tokens) ------------------------------
  const std::string source_module = module_of_source(path);
  for (const Token& tok : tokens) {
    if (tok.kind != TokKind::kPreprocessor) continue;
    const std::size_t quote = tok.text.find("#include \"");
    if (quote == std::string::npos) continue;
    const std::size_t begin = quote + std::string_view("#include \"").size();
    const std::size_t end = tok.text.find('"', begin);
    if (end == std::string::npos) continue;
    const std::string target_path = tok.text.substr(begin, end - begin);
    const std::string target = module_of_target(target_path);
    if (target.empty() || source_module.empty() || target == source_module) {
      continue;
    }
    // Record the first site of each module edge for cycle detection.
    const bool seen = std::any_of(
        edges_.begin(), edges_.end(), [&](const IncludeEdge& e) {
          return e.from == source_module && e.to == target;
        });
    if (!seen) edges_.push_back({source_module, target, path, tok.line});

    const int from_layer = layer_of(source_module);
    const int to_layer = layer_of(target);
    if (from_layer < 0 || to_layer < 0) continue;  // cycle check only
    if (to_layer < from_layer) continue;           // downward: allowed
    if (extra_edge_allowed(source_module, target)) continue;
    emit("layering", tok.line,
         "module '" + source_module + "' (layer " +
             std::to_string(from_layer) + ") must not include '" +
             target_path + "' from module '" + target + "' (layer " +
             std::to_string(to_layer) + "): " +
             (to_layer == from_layer ? "lateral" : "upward") +
             " edge violates the declared DAG");
  }

  // ---- Significant-token stream for the remaining rules --------------------
  std::vector<const Token*> sig;
  sig.reserve(tokens.size());
  for (const Token& tok : tokens) {
    if (tok.kind == TokKind::kComment ||
        tok.kind == TokKind::kPreprocessor) {
      continue;
    }
    sig.push_back(&tok);
  }
  const auto text = [&](std::size_t i) -> std::string_view {
    return i < sig.size() ? std::string_view(sig[i]->text)
                          : std::string_view();
  };
  const auto kind = [&](std::size_t i) {
    return i < sig.size() ? sig[i]->kind : TokKind::kPunct;
  };
  const auto prev_text = [&](std::size_t i) -> std::string_view {
    return i == 0 ? std::string_view() : std::string_view(sig[i - 1]->text);
  };
  // Skips a balanced template argument list starting at `i` (which must be
  // '<'); returns the index one past the closing '>'. Unbalanced input
  // returns the end of the stream.
  const auto skip_template_args = [&](std::size_t i) {
    std::size_t depth = 0;
    while (i < sig.size()) {
      if (text(i) == "<") ++depth;
      if (text(i) == ">") {
        if (--depth == 0) return i + 1;
      }
      if (text(i) == ";") return i;  // not a template list after all
      ++i;
    }
    return i;
  };

  // ---- Pass 2: unordered-container declarations ----------------------------
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
    if (kind(i) != TokKind::kIdentifier ||
        kUnorderedTypes.count(text(i)) == 0 || prev_text(i) != "::") {
      continue;
    }
    std::size_t j = i + 1;
    if (text(j) == "<") j = skip_template_args(j);
    while (text(j) == "&" || text(j) == "&&" || text(j) == "*" ||
           text(j) == "const") {
      ++j;
    }
    if (kind(j) == TokKind::kIdentifier) {
      unordered_vars.insert(std::string(text(j)));
    }
  }

  // ---- Pass 3: token rules -------------------------------------------------
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& tok = *sig[i];
    if (tok.kind != TokKind::kIdentifier) continue;
    const std::string_view id = tok.text;
    const std::string_view prev = prev_text(i);
    const std::string_view next = text(i + 1);
    const bool hot = in_hot_region(tok.line);

    // Hot-path allocation discipline.
    if (hot) {
      if (id == "new" && prev != "operator") {
        // Any expression-context `new` allocates; only `operator new`
        // declarations (none expected on hot paths) are exempt.
        emit("hotpath-alloc", tok.line,
             "operator new inside a hot-path region");
      } else if (kAllocCalls.count(id) != 0 &&
                 (next == "(" || next == "<")) {
        emit("hotpath-alloc", tok.line,
             "allocating call '" + std::string(id) +
                 "' inside a hot-path region");
      } else if (kGrowthCalls.count(id) != 0 &&
                 (prev == "." || prev == "->") && next == "(") {
        emit("hotpath-alloc", tok.line,
             "container growth '" + std::string(id) +
                 "' inside a hot-path region (acquire workspace capacity "
                 "up front)");
      } else if (id == "std" && next == "::" &&
                 text(i + 2) == "function") {
        emit("hotpath-function", tok.line,
             "std::function inside a hot-path region (type-erased calls "
             "allocate and cannot inline; take a template parameter)");
      } else if (id == "std" && next == "::" &&
                 kOwningContainers.count(text(i + 2)) != 0) {
        std::size_t j = i + 3;
        if (text(j) == "<") j = skip_template_args(j);
        if (text(j) != "&" && text(j) != "&&" && text(j) != "*") {
          emit("hotpath-alloc", tok.line,
               "owning std::" + std::string(text(i + 2)) +
                   " constructed inside a hot-path region");
        }
        i = j - 1;  // do not re-scan the template arguments
      } else if (kValueKernels.count(id) != 0 &&
                 (prev == "." || prev == "->" || prev == "::") &&
                 next == "(") {
        emit("hotpath-kernel", tok.line,
             "allocating Matrix value call '" + std::string(id) +
                 "' inside a hot-path region (use the '_into' kernel)");
      }
    }

    // Async-signal-safety: a signal-context region (the profiler's
    // SIGPROF path) may only touch preallocated memory, atomics, and
    // the signal-safe libc subset — no allocation, stdio, locks,
    // exceptions, or logging.
    if (in_signal_region(tok.line)) {
      if (id == "new" && prev != "operator") {
        emit("signal-unsafe", tok.line,
             "operator new inside a signal-context region (allocation is "
             "not async-signal-safe)");
      } else if (id == "throw") {
        emit("signal-unsafe", tok.line,
             "throwing inside a signal-context region (unwinding through "
             "a signal frame is undefined)");
      } else if (kSignalUnsafeCalls.count(id) != 0 &&
                 (next == "(" || next == "<")) {
        emit("signal-unsafe", tok.line,
             "call '" + std::string(id) +
                 "' inside a signal-context region is not "
                 "async-signal-safe");
      } else if ((id == "lock" || id == "unlock" || id == "try_lock") &&
                 (prev == "." || prev == "->") && next == "(") {
        emit("signal-unsafe", tok.line,
             "lock operation '" + std::string(id) +
                 "' inside a signal-context region can deadlock against "
                 "the interrupted thread");
      } else if (id == "std" && next == "::" &&
                 kSignalUnsafeStdTypes.count(text(i + 2)) != 0) {
        emit("signal-unsafe", tok.line,
             "std::" + std::string(text(i + 2)) +
                 " inside a signal-context region is not "
                 "async-signal-safe");
      } else if (id.size() > 10 && id.substr(0, 11) == "GANSEC_LOG_") {
        emit("signal-unsafe", tok.line,
             "logging inside a signal-context region (sinks allocate and "
             "take locks)");
      }
    }

    // Determinism: banned randomness/time sources, anywhere in the file.
    if (id == "random_device") {
      emit("determinism-rng", tok.line,
           "std::random_device is nondeterministic; derive streams from "
           "the run seed via math::Rng");
    } else if ((id == "rand" || id == "srand" || id == "time") &&
               next == "(" && prev != "." && prev != "->" &&
               (prev != "::" || (i >= 2 && text(i - 2) == "std"))) {
      emit("determinism-rng", tok.line,
           "'" + std::string(id) +
               "()' breaks reproducibility; derive values from the run "
               "seed (math::Rng) or the trace clock (obs)");
    }

    // Determinism: unordered-container iteration.
    if (id == "for" && next == "(") {
      std::size_t depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < sig.size(); ++j) {
        if (text(j) == "(") ++depth;
        if (text(j) == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (text(j) == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon != 0 && close > colon) {
        std::string_view range_var;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (kind(j) == TokKind::kIdentifier) range_var = text(j);
        }
        if (!range_var.empty() &&
            unordered_vars.count(std::string(range_var)) != 0) {
          emit("determinism-unordered", tok.line,
               "iteration over unordered container '" +
                   std::string(range_var) +
                   "': order is implementation-defined and must not reach "
                   "serialized output or metrics dumps");
        }
      }
    } else if (unordered_vars.count(std::string(id)) != 0 &&
               (next == "." || next == "->") &&
               (text(i + 2) == "begin" || text(i + 2) == "cbegin" ||
                text(i + 2) == "rbegin")) {
      emit("determinism-unordered", tok.line,
           "iterator over unordered container '" + std::string(id) +
               "': order is implementation-defined and must not reach "
               "serialized output or metrics dumps");
    }

    // Observability hygiene: obs::{counter,gauge,histogram,series}("...")
    // and obs::Span / GANSEC_SPAN names.
    std::size_t name_at = 0;  // significant index of the name argument
    std::string kind_name;
    if (id == "obs" && next == "::" && prev != "." && prev != "->") {
      const std::string_view fn = text(i + 2);
      if (kMetricFns.count(fn) != 0 && text(i + 3) == "(") {
        name_at = i + 4;
        kind_name = std::string(fn);
      } else if (fn == "Span") {
        std::size_t j = i + 3;
        if (kind(j) == TokKind::kIdentifier) ++j;  // variable name
        if (text(j) == "(") {
          name_at = j + 1;
          kind_name = "span";
        }
      }
    } else if (id == "GANSEC_SPAN" && next == "(") {
      name_at = i + 2;
      kind_name = "span";
    }
    if (name_at != 0) {
      if (kind(name_at) != TokKind::kString) {
        emit("obs-name-literal", tok.line,
             kind_name + " name must be a string literal so the manifest "
                         "cross-check can see it");
      } else {
        const std::string name = strip_quotes(text(name_at));
        if (!valid_metric_name(name)) {
          emit("obs-name-format", tok.line,
               kind_name + " name '" + name +
                   "' must be dot-namespaced lowercase "
                   "([a-z0-9_]+(.[a-z0-9_]+)+)");
        }
        registrations_.push_back({kind_name, name, path, tok.line});
      }
    }

    // Error discipline.
    if (id == "catch" && next == "(" && text(i + 2) == "...") {
      std::size_t j = i + 3;
      while (j < sig.size() && text(j) != "{") ++j;
      std::size_t depth = 0;
      bool handles = false;
      for (; j < sig.size(); ++j) {
        if (text(j) == "{") ++depth;
        if (text(j) == "}" && --depth == 0) break;
        if (text(j) == "throw" || text(j) == "current_exception") {
          handles = true;
        }
      }
      if (!handles) {
        emit("error-swallow", tok.line,
             "catch (...) swallows the error: rethrow, capture "
             "std::current_exception, or suppress with a comment "
             "explaining why losing it is safe");
      }
    } else if (id == "throw") {
      if (next == "std" && text(i + 2) == "::") {
        emit("error-type", tok.line,
             "library code must throw gansec::Error subclasses, not "
             "std::" + std::string(text(i + 3)));
      } else if (kind(i + 1) == TokKind::kString ||
                 kind(i + 1) == TokKind::kChar ||
                 kind(i + 1) == TokKind::kNumber) {
        emit("error-type", tok.line,
             "library code must throw gansec::Error subclasses, not "
             "literals");
      }
    }
  }

  // ---- Apply suppressions --------------------------------------------------
  for (Diagnostic& d : pending) {
    bool suppressed = false;
    for (std::size_t line : {d.line, d.line == 0 ? d.line : d.line - 1}) {
      const auto it = allows.find(line);
      if (it != allows.end() && it->second.count(d.rule) != 0) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      ++suppressions_used_;
    } else {
      diagnostics_.push_back(std::move(d));
    }
  }
}

void Linter::finish() {
  // ---- Module-cycle detection over the observed include edges --------------
  std::set<std::string> modules;
  for (const IncludeEdge& e : edges_) {
    modules.insert(e.from);
    modules.insert(e.to);
  }
  // Iterative grey/black DFS; module graphs are tiny. One diagnostic per
  // detected back edge, attributed to the include site that closed the
  // cycle.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  const IncludeEdge* back_edge = nullptr;
  std::string cycle_text;
  for (const std::string& root : modules) {
    if (color[root] != 0 || back_edge != nullptr) continue;
    // Each frame: (node, index of the next outgoing edge to try).
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty() && back_edge == nullptr) {
      auto& [node, next_edge] = stack.back();
      bool descended = false;
      for (std::size_t k = next_edge; k < edges_.size(); ++k) {
        const IncludeEdge& e = edges_[k];
        if (e.from != node) continue;
        if (color[e.to] == 1) {
          back_edge = &e;
          cycle_text = e.to;
          bool in_cycle = false;
          for (const auto& [name, unused] : stack) {
            (void)unused;
            if (name == e.to) in_cycle = true;
            if (in_cycle && name != e.to) cycle_text += " -> " + name;
          }
          cycle_text += " -> " + e.to;
          break;
        }
        if (color[e.to] == 0) {
          next_edge = k + 1;
          color[e.to] = 1;
          stack.emplace_back(e.to, 0);
          descended = true;
          break;
        }
      }
      if (back_edge != nullptr) break;
      if (!descended) {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  if (back_edge != nullptr) {
    diagnostics_.push_back(
        {"layer-cycle", back_edge->file, back_edge->line,
         "module include cycle: " + cycle_text});
  }

  // ---- Manifest cross-check ------------------------------------------------
  if (options_.manifest_path.empty()) return;
  std::ifstream in(options_.manifest_path);
  if (!in) {
    diagnostics_.push_back({"obs-manifest", options_.manifest_path, 0,
                            "manifest file cannot be opened"});
    return;
  }
  struct ManifestEntry {
    std::string kind;
    std::string name;
    std::size_t line;
    bool seen = false;
  };
  std::vector<ManifestEntry> manifest;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::stringstream fields(raw);
    std::string kind_field;
    std::string name_field;
    std::string extra;
    if (!(fields >> kind_field)) continue;  // blank/comment line
    if (!(fields >> name_field) || (fields >> extra)) {
      diagnostics_.push_back(
          {"obs-manifest", options_.manifest_path, line_no,
           "manifest line must be '<kind> <name>'"});
      continue;
    }
    if (kind_field != "counter" && kind_field != "gauge" &&
        kind_field != "histogram" && kind_field != "series" &&
        kind_field != "span") {
      diagnostics_.push_back(
          {"obs-manifest", options_.manifest_path, line_no,
           "unknown metric kind '" + kind_field + "'"});
      continue;
    }
    manifest.push_back({kind_field, name_field, line_no});
  }
  for (const Registration& reg : registrations_) {
    bool found = false;
    for (ManifestEntry& entry : manifest) {
      if (entry.kind == reg.kind && entry.name == reg.name) {
        entry.seen = true;
        found = true;
      }
    }
    if (!found) {
      diagnostics_.push_back(
          {"obs-manifest", reg.file, reg.line,
           reg.kind + " '" + reg.name +
               "' is not in the metrics manifest (add it to keep the "
               "dashboard namespace reviewed)"});
    }
  }
  for (const ManifestEntry& entry : manifest) {
    if (!entry.seen) {
      diagnostics_.push_back(
          {"obs-manifest", options_.manifest_path, entry.line,
           entry.kind + " '" + entry.name +
               "' is in the manifest but no scanned source registers it "
               "(stale entry?)"});
    }
  }
}

}  // namespace gansec::lint
