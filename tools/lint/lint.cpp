#include "lint.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace gansec::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// ---- Layering DAG ----------------------------------------------------------
//
// The declared module DAG (DESIGN.md "Static analysis & invariants"):
//
//   obs -> exec -> math -> {nn, stats, dsp} -> {gan, cpps, am}
//       -> {security, baseline, model} -> {core, serve}
//
// A module may include its own headers and any strictly lower layer.
// Lateral includes (same layer, different module) and upward includes are
// violations. `exec` is a virtual module: the execution substrate
// (core/execution.hpp, core/thread_pool.hpp and their sources) lives under
// the core/ directory because its types are in namespace gansec::core, but
// the build layers it *below* math so the GEMM kernels can dispatch
// through it (see src/core/CMakeLists.txt).
struct LayerEntry {
  const char* module;
  int layer;
};

constexpr LayerEntry kLayers[] = {
    {"obs", 0},     {"exec", 1},     {"math", 2},     {"nn", 3},
    {"stats", 3},   {"dsp", 3},      {"gan", 4},      {"cpps", 4},
    {"am", 4},      {"security", 5}, {"baseline", 5}, {"model", 5},
    {"core", 6},    {"serve", 6},
};

// Declared intra-layer edges the DAG text above cannot express. am -> cpps
// mirrors gansec_am's PUBLIC link on gansec_cpps: the AM substrate builds
// the cpps::Architecture that Algorithm 1 consumes.
constexpr std::pair<const char*, const char*> kExtraEdges[] = {
    {"am", "cpps"},
};

int layer_of(std::string_view module) {
  for (const LayerEntry& e : kLayers) {
    if (module == e.module) return e.layer;
  }
  return -1;  // unknown module: exempt from the DAG, still cycle-checked
}

bool extra_edge_allowed(std::string_view from, std::string_view to) {
  for (const auto& [f, t] : kExtraEdges) {
    if (from == f && to == t) return true;
  }
  return false;
}

// Headers physically under core/ that belong to the virtual exec module.
bool is_exec_path(std::string_view path) {
  for (const char* stem :
       {"core/execution.hpp", "core/thread_pool.hpp", "core/execution.cpp",
        "core/thread_pool.cpp"}) {
    if (path.size() >= std::string_view(stem).size() &&
        path.substr(path.size() - std::string_view(stem).size()) == stem) {
      return true;
    }
  }
  return false;
}

/// Module of a scanned file: the component after "include/gansec/" or
/// "src/", empty for unlayered files (top-level headers, tools, tests).
std::string module_of_source(std::string_view path) {
  if (is_exec_path(path)) return "exec";
  const auto component_after = [&](std::string_view marker) -> std::string {
    const std::size_t at = path.rfind(marker);
    if (at == std::string_view::npos) return "";
    const std::size_t start = at + marker.size();
    const std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) return "";  // top-level file
    return std::string(path.substr(start, slash - start));
  };
  std::string mod = component_after("include/gansec/");
  if (!mod.empty()) return mod;
  return component_after("src/");
}

/// Module of an include target ("gansec/math/matrix.hpp" -> "math");
/// empty for top-level headers (gansec/error.hpp) which any layer may use.
std::string module_of_target(std::string_view include_path) {
  if (is_exec_path(include_path)) return "exec";
  constexpr std::string_view prefix = "gansec/";
  if (include_path.substr(0, prefix.size()) != prefix) return "";
  const std::string_view rest = include_path.substr(prefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

// ---- Token-set tables ------------------------------------------------------

const std::set<std::string_view> kOwningContainers = {
    "vector", "string", "wstring", "basic_string", "map", "multimap",
    "set", "multiset", "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "deque", "list", "forward_list", "stringstream",
    "ostringstream", "istringstream", "valarray",
};

const std::set<std::string_view> kAllocCalls = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared",
};

const std::set<std::string_view> kGrowthCalls = {"push_back", "emplace_back"};

// Matrix value-API members with destination-passing `_into` siblings (or a
// zero-allocation equivalent); calling them on a hot path re-allocates the
// result every iteration.
const std::set<std::string_view> kValueKernels = {
    "matmul", "matmul_transposed_a", "matmul_transposed_b", "hadamard",
    "hstack", "vstack", "map", "apply", "transposed", "slice_cols",
    "slice_rows", "gather_rows", "col_sums", "row_sums", "row", "from_rows",
    "identity",
};

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

const std::set<std::string_view> kMetricFns = {"counter", "gauge",
                                               "histogram", "series"};

// Calls that are not async-signal-safe (POSIX signal-safety(7)): heap
// allocation, stdio, and lock acquisition. Banned inside
// `// gansec-lint: signal-context` regions (the SIGPROF handler path).
const std::set<std::string_view> kSignalUnsafeCalls = {
    "malloc",   "calloc",  "realloc",     "free",    "aligned_alloc",
    "strdup",   "make_unique", "make_shared",
    "printf",   "fprintf", "sprintf",     "snprintf", "vsnprintf",
    "puts",     "fputs",   "fwrite",      "fopen",   "fclose",
};

// Lock/stream/owning std:: types whose mere use in a signal context is a
// bug: taking a lock can deadlock against the interrupted thread, and
// stream/string/container operations allocate.
const std::set<std::string_view> kSignalUnsafeStdTypes = {
    "mutex",         "recursive_mutex", "shared_mutex", "timed_mutex",
    "lock_guard",    "unique_lock",     "scoped_lock",  "shared_lock",
    "condition_variable", "condition_variable_any",
    "cout",          "cerr",            "clog",
    "string",        "ostringstream",   "stringstream", "vector",
    "function",
};

// Keywords and operators that can never name a function definition or a
// call target; keeps the symbol scanner from recording `if (...)` or
// `sizeof (...)` as calls.
const std::set<std::string_view> kNotCallable = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "noexcept", "assert", "defined", "throw",
    "do", "else", "case", "goto", "new", "delete", "operator", "requires",
    "alignas", "typeid", "co_await", "co_return", "co_yield", "using",
    "typedef", "template", "typename",
};

// std container/atomic/thread member names that the call-graph resolver
// never links to repo functions: resolving `.size()` or `.store()` by last
// name alone would fabricate edges to every repo function sharing the
// name. Repo-specific member calls (`.forward(...)`, `.acquire(...)`) are
// not on this list and resolve normally.
const std::set<std::string_view> kStdMemberNames = {
    "push_back", "emplace_back", "pop_back", "c_str", "str", "substr",
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set", "notify_one", "notify_all", "wait", "wait_for",
    "join", "detach", "joinable", "lock", "unlock", "try_lock",
    "begin", "end", "cbegin", "cend", "rbegin", "rend",
    "size", "empty", "data", "get", "count", "find", "insert", "erase",
    "at", "front", "back", "top", "pop", "push", "append", "capacity",
    "has_value", "value_or", "length", "swap",
};

const char* const kKnownRules[] = {
    "layering",        "layer-cycle",      "hotpath-alloc",
    "hotpath-function", "hotpath-kernel",  "determinism-rng",
    "determinism-unordered", "obs-name-literal", "obs-name-format",
    "obs-manifest",    "error-swallow",    "error-type",
    "signal-unsafe",   "view-lifetime",    "atomics-ordering",
    "unused-allow",    "lint-directive",
};

/// Dot-namespaced lowercase: [a-z0-9_]+(\.[a-z0-9_]+)+ — at least two
/// segments so every name carries its subsystem namespace.
bool valid_metric_name(std::string_view name) {
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  return segments + 1 >= 2;
}

std::string strip_quotes(std::string_view literal) {
  if (literal.size() >= 2 && literal.front() == '"' &&
      literal.back() == '"') {
    return std::string(literal.substr(1, literal.size() - 2));
  }
  return std::string(literal);
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// ---- Significant-token stream helpers --------------------------------------

std::string_view tok_text(const std::vector<Token>& sig, std::size_t i) {
  return i < sig.size() ? std::string_view(sig[i].text) : std::string_view();
}

TokKind tok_kind(const std::vector<Token>& sig, std::size_t i) {
  return i < sig.size() ? sig[i].kind : TokKind::kPunct;
}

std::string_view tok_prev(const std::vector<Token>& sig, std::size_t i) {
  return i == 0 ? std::string_view() : std::string_view(sig[i - 1].text);
}

/// Skips a balanced template argument list starting at `i` (which must be
/// '<'); returns the index one past the closing '>'. Unbalanced input
/// returns the end of the stream.
std::size_t skip_template_args(const std::vector<Token>& sig, std::size_t i) {
  std::size_t depth = 0;
  while (i < sig.size()) {
    if (tok_text(sig, i) == "<") ++depth;
    if (tok_text(sig, i) == ">") {
      if (--depth == 0) return i + 1;
    }
    if (tok_text(sig, i) == ";") return i;  // not a template list after all
    ++i;
  }
  return i;
}

/// Returns the index one past the ')' matching the '(' at `i`.
std::size_t skip_parens(const std::vector<Token>& sig, std::size_t i) {
  std::size_t depth = 0;
  for (; i < sig.size(); ++i) {
    if (tok_text(sig, i) == "(") ++depth;
    if (tok_text(sig, i) == ")" && --depth == 0) return i + 1;
  }
  return i;
}

/// Returns the sig index of the '}' matching the '{' at `open`.
std::size_t match_brace(const std::vector<Token>& sig, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t j = open; j < sig.size(); ++j) {
    if (tok_text(sig, j) == "{") ++depth;
    else if (tok_text(sig, j) == "}" && --depth == 0) return j;
  }
  return sig.size();
}

// ---- Hot-path / signal-context token checks --------------------------------
//
// Shared between the lexical region pass (pass 3 of check_file, `ctx` =
// "inside a hot-path region") and the transitive body re-scan in finish()
// (`ctx` = "in hot-path-reachable function '...'"). Each runs the checks
// for the token at `i` and returns the index the caller should resume
// from (the caller's ++i still applies).

template <typename Emit>
std::size_t check_hot_token(const std::vector<Token>& sig, std::size_t i,
                            const std::string& ctx, const Emit& emit) {
  const Token& tok = sig[i];
  if (tok.kind != TokKind::kIdentifier) return i;
  const std::string_view id = tok.text;
  const std::string_view prev = tok_prev(sig, i);
  const std::string_view next = tok_text(sig, i + 1);
  // Error-path exemption: an allocation lexically inside a `throw`
  // statement only executes once the invariant is already broken, so it
  // never costs the hot path anything (building the what() message must
  // allocate anyway).
  if (id != "throw") {
    for (std::size_t b = i; b > 0; --b) {
      const std::string_view t = tok_text(sig, b - 1);
      if (t == ";" || t == "{" || t == "}") break;
      if (t == "throw") return i;
    }
  }
  if (id == "new" && prev != "operator") {
    // Any expression-context `new` allocates; only `operator new`
    // declarations (none expected on hot paths) are exempt.
    emit("hotpath-alloc", tok.line, "operator new " + ctx);
  } else if (kAllocCalls.count(id) != 0 && (next == "(" || next == "<")) {
    emit("hotpath-alloc", tok.line,
         "allocating call '" + std::string(id) + "' " + ctx);
  } else if (kGrowthCalls.count(id) != 0 && (prev == "." || prev == "->") &&
             next == "(") {
    emit("hotpath-alloc", tok.line,
         "container growth '" + std::string(id) + "' " + ctx +
             " (acquire workspace capacity up front)");
  } else if (id == "std" && next == "::" &&
             tok_text(sig, i + 2) == "function") {
    emit("hotpath-function", tok.line,
         "std::function " + ctx +
             " (type-erased calls allocate and cannot inline; take a "
             "template parameter)");
  } else if (id == "std" && next == "::" &&
             kOwningContainers.count(tok_text(sig, i + 2)) != 0) {
    std::size_t j = i + 3;
    if (tok_text(sig, j) == "<") j = skip_template_args(sig, j);
    if (tok_text(sig, j) != "&" && tok_text(sig, j) != "&&" &&
        tok_text(sig, j) != "*") {
      emit("hotpath-alloc", tok.line,
           "owning std::" + std::string(tok_text(sig, i + 2)) +
               " constructed " + ctx);
    }
    return j - 1;  // do not re-scan the template arguments
  } else if (kValueKernels.count(id) != 0 &&
             (prev == "." || prev == "->" || prev == "::") && next == "(") {
    emit("hotpath-kernel", tok.line,
         "allocating Matrix value call '" + std::string(id) + "' " + ctx +
             " (use the '_into' kernel)");
  }
  return i;
}

template <typename Emit>
std::size_t check_signal_token(const std::vector<Token>& sig, std::size_t i,
                               const std::string& ctx, const Emit& emit) {
  const Token& tok = sig[i];
  if (tok.kind != TokKind::kIdentifier) return i;
  const std::string_view id = tok.text;
  const std::string_view prev = tok_prev(sig, i);
  const std::string_view next = tok_text(sig, i + 1);
  if (id == "new" && prev != "operator") {
    emit("signal-unsafe", tok.line,
         "operator new " + ctx + " (allocation is not async-signal-safe)");
  } else if (id == "throw") {
    emit("signal-unsafe", tok.line,
         "throwing " + ctx +
             " (unwinding through a signal frame is undefined)");
  } else if (kSignalUnsafeCalls.count(id) != 0 &&
             (next == "(" || next == "<")) {
    emit("signal-unsafe", tok.line,
         "call '" + std::string(id) + "' " + ctx +
             " is not async-signal-safe");
  } else if ((id == "lock" || id == "unlock" || id == "try_lock") &&
             (prev == "." || prev == "->") && next == "(") {
    emit("signal-unsafe", tok.line,
         "lock operation '" + std::string(id) + "' " + ctx +
             " can deadlock against the interrupted thread");
  } else if (id == "std" && next == "::" &&
             kSignalUnsafeStdTypes.count(tok_text(sig, i + 2)) != 0) {
    emit("signal-unsafe", tok.line,
         "std::" + std::string(tok_text(sig, i + 2)) + " " + ctx +
             " is not async-signal-safe");
  } else if (id.size() > 10 && id.substr(0, 11) == "GANSEC_LOG_") {
    emit("signal-unsafe", tok.line,
         "logging " + ctx + " (sinks allocate and take locks)");
  }
  return i;
}

}  // namespace

Linter::Linter(Options options) : options_(std::move(options)) {}

bool Linter::known_rule(std::string_view rule) {
  for (const char* r : kKnownRules) {
    if (rule == r) return true;
  }
  return false;
}

void Linter::check_file(const std::string& path, std::string_view source) {
  ++files_checked_;
  const std::vector<Token> tokens = tokenize(source);
  files_.push_back({});
  const std::size_t file_index = files_.size() - 1;
  FileState& state = files_[file_index];
  state.path = path;

  std::vector<Diagnostic> pending;
  const auto emit = [&](const char* rule, std::size_t line,
                        std::string message) {
    pending.push_back({rule, path, line, std::move(message), {}});
  };

  // ---- Pass 0: directives (allow map, hot/signal/seqlock regions) ----------
  std::vector<SeqRegion> seq_regions;
  bool region_open = false;
  bool signal_open = false;
  bool seq_open = false;
  for (const Token& tok : tokens) {
    if (tok.kind != TokKind::kComment) continue;
    const std::size_t at = tok.text.find("gansec-lint:");
    if (at == std::string::npos) continue;
    std::string body = trim(std::string_view(tok.text).substr(
        at + std::string_view("gansec-lint:").size()));
    // Block comments carry a trailing delimiter; line comments do not.
    if (body.size() >= 2 && body.substr(body.size() - 2) == "*/") {
      body = trim(std::string_view(body).substr(0, body.size() - 2));
    }
    if (body == "hot-path") {
      if (region_open) {
        emit("lint-directive", tok.line,
             "hot-path region opened while the previous one is still open");
      } else {
        state.hot_regions.push_back({tok.line, kNpos});
        region_open = true;
      }
    } else if (body == "end-hot-path") {
      if (!region_open) {
        emit("lint-directive", tok.line,
             "end-hot-path without a matching hot-path");
      } else {
        state.hot_regions.back().end_line = tok.line;
        region_open = false;
      }
    } else if (body == "signal-context") {
      if (signal_open) {
        emit("lint-directive", tok.line,
             "signal-context region opened while the previous one is still "
             "open");
      } else {
        state.signal_regions.push_back({tok.line, kNpos});
        signal_open = true;
      }
    } else if (body == "end-signal-context") {
      if (!signal_open) {
        emit("lint-directive", tok.line,
             "end-signal-context without a matching signal-context");
      } else {
        state.signal_regions.back().end_line = tok.line;
        signal_open = false;
      }
    } else if (body == "seqlock(writer)" || body == "seqlock(reader)") {
      if (seq_open) {
        emit("lint-directive", tok.line,
             "seqlock region opened while the previous one is still open");
      } else {
        seq_regions.push_back({tok.line, kNpos, body == "seqlock(writer)"});
        seq_open = true;
      }
    } else if (body == "end-seqlock") {
      if (!seq_open) {
        emit("lint-directive", tok.line,
             "end-seqlock without a matching seqlock(writer|reader)");
      } else {
        seq_regions.back().end_line = tok.line;
        seq_open = false;
      }
    } else if (body.size() > 8 && body.substr(0, 8) == "seqlock(" &&
               body.back() == ')') {
      emit("lint-directive", tok.line,
           "seqlock role must be 'writer' or 'reader', got '" +
               body.substr(8, body.size() - 9) + "'");
    } else if (body.size() > 7 && body.substr(0, 6) == "allow(" &&
               body.back() == ')') {
      std::stringstream list(body.substr(6, body.size() - 7));
      std::string rule;
      while (std::getline(list, rule, ',')) {
        rule = trim(rule);
        if (!known_rule(rule)) {
          emit("lint-directive", tok.line,
               "allow() names unknown rule '" + rule + "'");
          continue;
        }
        state.allows[tok.line][rule] = false;  // false = not yet used
      }
    } else {
      emit("lint-directive", tok.line,
           "unknown gansec-lint directive '" + body + "'");
    }
  }
  if (region_open) {
    emit("lint-directive", state.hot_regions.back().begin_line,
         "hot-path region is never closed (missing end-hot-path)");
  }
  if (signal_open) {
    emit("lint-directive", state.signal_regions.back().begin_line,
         "signal-context region is never closed (missing "
         "end-signal-context)");
  }
  if (seq_open) {
    emit("lint-directive", seq_regions.back().begin_line,
         "seqlock region is never closed (missing end-seqlock)");
  }
  const auto in_hot_region = [&](std::size_t line) {
    for (const Region& r : state.hot_regions) {
      if (line >= r.begin_line && line <= r.end_line) return true;
    }
    return false;
  };
  const auto in_signal_region = [&](std::size_t line) {
    for (const Region& r : state.signal_regions) {
      if (line >= r.begin_line && line <= r.end_line) return true;
    }
    return false;
  };

  // ---- Pass 1: layering (preprocessor tokens) ------------------------------
  const std::string source_module = module_of_source(path);
  for (const Token& tok : tokens) {
    if (tok.kind != TokKind::kPreprocessor) continue;
    const std::size_t quote = tok.text.find("#include \"");
    if (quote == std::string::npos) continue;
    const std::size_t begin = quote + std::string_view("#include \"").size();
    const std::size_t end = tok.text.find('"', begin);
    if (end == std::string::npos) continue;
    const std::string target_path = tok.text.substr(begin, end - begin);
    const std::string target = module_of_target(target_path);
    if (target.empty() || source_module.empty() || target == source_module) {
      continue;
    }
    // Record the first site of each module edge for cycle detection.
    const bool seen = std::any_of(
        edges_.begin(), edges_.end(), [&](const IncludeEdge& e) {
          return e.from == source_module && e.to == target;
        });
    if (!seen) edges_.push_back({source_module, target, path, tok.line});

    const int from_layer = layer_of(source_module);
    const int to_layer = layer_of(target);
    if (from_layer < 0 || to_layer < 0) continue;  // cycle check only
    if (to_layer < from_layer) continue;           // downward: allowed
    if (extra_edge_allowed(source_module, target)) continue;
    emit("layering", tok.line,
         "module '" + source_module + "' (layer " +
             std::to_string(from_layer) + ") must not include '" +
             target_path + "' from module '" + target + "' (layer " +
             std::to_string(to_layer) + "): " +
             (to_layer == from_layer ? "lateral" : "upward") +
             " edge violates the declared DAG");
  }

  // ---- Significant-token stream for the remaining rules --------------------
  state.sig.reserve(tokens.size());
  for (const Token& tok : tokens) {
    if (tok.kind == TokKind::kComment ||
        tok.kind == TokKind::kPreprocessor) {
      continue;
    }
    state.sig.push_back(tok);
  }
  const std::vector<Token>& sig = state.sig;
  const auto text = [&](std::size_t i) { return tok_text(sig, i); };
  const auto kind = [&](std::size_t i) { return tok_kind(sig, i); };
  const auto prev_text = [&](std::size_t i) { return tok_prev(sig, i); };

  // ---- Pass 2: unordered-container declarations ----------------------------
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
    if (kind(i) != TokKind::kIdentifier ||
        kUnorderedTypes.count(text(i)) == 0 || prev_text(i) != "::") {
      continue;
    }
    std::size_t j = i + 1;
    if (text(j) == "<") j = skip_template_args(sig, j);
    while (text(j) == "&" || text(j) == "&&" || text(j) == "*" ||
           text(j) == "const") {
      ++j;
    }
    if (kind(j) == TokKind::kIdentifier) {
      unordered_vars.insert(std::string(text(j)));
    }
  }

  // ---- Pass 3: token rules -------------------------------------------------
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& tok = sig[i];
    if (tok.kind != TokKind::kIdentifier) continue;
    const std::string_view id = tok.text;
    const std::string_view prev = prev_text(i);
    const std::string_view next = text(i + 1);

    // Hot-path allocation discipline (lexical regions; reachable callees
    // are handled transitively in finish()).
    if (in_hot_region(tok.line)) {
      i = check_hot_token(sig, i, "inside a hot-path region", emit);
    }

    // Async-signal-safety: a signal-context region (the profiler's
    // SIGPROF path) may only touch preallocated memory, atomics, and
    // the signal-safe libc subset — no allocation, stdio, locks,
    // exceptions, or logging.
    if (in_signal_region(tok.line)) {
      i = check_signal_token(sig, i, "inside a signal-context region", emit);
    }

    // Determinism: banned randomness/time sources, anywhere in the file.
    if (id == "random_device") {
      emit("determinism-rng", tok.line,
           "std::random_device is nondeterministic; derive streams from "
           "the run seed via math::Rng");
    } else if ((id == "rand" || id == "srand" || id == "time") &&
               next == "(" && prev != "." && prev != "->" &&
               (prev != "::" || (i >= 2 && text(i - 2) == "std"))) {
      emit("determinism-rng", tok.line,
           "'" + std::string(id) +
               "()' breaks reproducibility; derive values from the run "
               "seed (math::Rng) or the trace clock (obs)");
    }

    // Determinism: unordered-container iteration.
    if (id == "for" && next == "(") {
      std::size_t depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < sig.size(); ++j) {
        if (text(j) == "(") ++depth;
        if (text(j) == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (text(j) == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon != 0 && close > colon) {
        std::string_view range_var;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (kind(j) == TokKind::kIdentifier) range_var = text(j);
        }
        if (!range_var.empty() &&
            unordered_vars.count(std::string(range_var)) != 0) {
          emit("determinism-unordered", tok.line,
               "iteration over unordered container '" +
                   std::string(range_var) +
                   "': order is implementation-defined and must not reach "
                   "serialized output or metrics dumps");
        }
      }
    } else if (unordered_vars.count(std::string(id)) != 0 &&
               (next == "." || next == "->") &&
               (text(i + 2) == "begin" || text(i + 2) == "cbegin" ||
                text(i + 2) == "rbegin")) {
      emit("determinism-unordered", tok.line,
           "iterator over unordered container '" + std::string(id) +
               "': order is implementation-defined and must not reach "
               "serialized output or metrics dumps");
    }

    // Observability hygiene: obs::{counter,gauge,histogram,series}("...")
    // and obs::Span / GANSEC_SPAN names.
    std::size_t name_at = 0;  // significant index of the name argument
    std::string kind_name;
    if (id == "obs" && next == "::" && prev != "." && prev != "->") {
      const std::string_view fn = text(i + 2);
      if (kMetricFns.count(fn) != 0 && text(i + 3) == "(") {
        name_at = i + 4;
        kind_name = std::string(fn);
      } else if (fn == "Span") {
        std::size_t j = i + 3;
        if (kind(j) == TokKind::kIdentifier) ++j;  // variable name
        if (text(j) == "(") {
          name_at = j + 1;
          kind_name = "span";
        }
      }
    } else if (id == "GANSEC_SPAN" && next == "(") {
      name_at = i + 2;
      kind_name = "span";
    }
    if (name_at != 0) {
      if (kind(name_at) != TokKind::kString) {
        emit("obs-name-literal", tok.line,
             kind_name + " name must be a string literal so the manifest "
                         "cross-check can see it");
      } else {
        const std::string name = strip_quotes(text(name_at));
        if (!valid_metric_name(name)) {
          emit("obs-name-format", tok.line,
               kind_name + " name '" + name +
                   "' must be dot-namespaced lowercase "
                   "([a-z0-9_]+(.[a-z0-9_]+)+)");
        }
        registrations_.push_back({kind_name, name, path, tok.line});
      }
    }

    // Error discipline.
    if (id == "catch" && next == "(" && text(i + 2) == "...") {
      std::size_t j = i + 3;
      while (j < sig.size() && text(j) != "{") ++j;
      std::size_t depth = 0;
      bool handles = false;
      for (; j < sig.size(); ++j) {
        if (text(j) == "{") ++depth;
        if (text(j) == "}" && --depth == 0) break;
        if (text(j) == "throw" || text(j) == "current_exception") {
          handles = true;
        }
      }
      if (!handles) {
        emit("error-swallow", tok.line,
             "catch (...) swallows the error: rethrow, capture "
             "std::current_exception, or suppress with a comment "
             "explaining why losing it is safe");
      }
    } else if (id == "throw") {
      if (next == "std" && text(i + 2) == "::") {
        emit("error-type", tok.line,
             "library code must throw gansec::Error subclasses, not "
             "std::" + std::string(text(i + 3)));
      } else if (kind(i + 1) == TokKind::kString ||
                 kind(i + 1) == TokKind::kChar ||
                 kind(i + 1) == TokKind::kNumber) {
        emit("error-type", tok.line,
             "library code must throw gansec::Error subclasses, not "
             "literals");
      }
    }
  }

  // ---- Pass 4: symbol table, call sites, view-lifetime ---------------------
  scan_symbols(file_index, pending);

  // ---- Pass 5: seqlock acquire/release pairings ----------------------------
  check_atomics(file_index, seq_regions, pending);

  // ---- Apply suppressions --------------------------------------------------
  for (Diagnostic& d : pending) {
    if (!apply_suppression(state, d)) {
      diagnostics_.push_back(std::move(d));
    }
  }
}

bool Linter::apply_suppression(FileState& state, Diagnostic& d) {
  for (std::size_t line : {d.line, d.line == 0 ? d.line : d.line - 1}) {
    const auto it = state.allows.find(line);
    if (it == state.allows.end()) continue;
    const auto rule_it = it->second.find(d.rule);
    if (rule_it != it->second.end()) {
      rule_it->second = true;  // this allow earned its keep
      ++suppressions_used_;
      return true;
    }
  }
  return false;
}

namespace {

// ---- view-lifetime ---------------------------------------------------------
//
// A `*_view` producer returns a non-owning borrow of storage owned by its
// receiver. Returning such a view out of the function whose *locals* own
// the storage (a body-declared object, a by-value parameter, or a
// Workspace::Scope about to pop) hands the caller a dangling reference.
// Producers themselves (functions named `*_view`) are exempt: returning a
// borrow is their contract, and their storage outlives the call by
// convention (valid until the next mutating call on the same object).

bool is_view_producer(const std::vector<Token>& sig, std::size_t i) {
  if (tok_kind(sig, i) != TokKind::kIdentifier) return false;
  const std::string_view id = tok_text(sig, i);
  if (!ends_with(id, "_view") || id == "string_view" ||
      id == "basic_string_view") {
    return false;
  }
  if (tok_text(sig, i + 1) != "(") return false;
  // std::-qualified view types (std::string_view(...)) are not producers.
  if (tok_prev(sig, i) == "::" && i >= 2 && tok_text(sig, i - 2) == "std") {
    return false;
  }
  return true;
}

template <typename Emit>
void check_view_lifetime_fn(const std::vector<Token>& sig,
                            std::size_t params_open, std::size_t params_end,
                            std::size_t body_begin, std::size_t body_end,
                            const std::string& qualified, const Emit& emit) {
  const auto text = [&](std::size_t i) { return tok_text(sig, i); };
  const auto kind = [&](std::size_t i) { return tok_kind(sig, i); };

  // Locals that own storage: by-value parameters ...
  std::set<std::string> owners;
  {
    std::size_t depth = 0;
    bool by_ref = false;
    std::string last_ident;
    for (std::size_t j = params_open; j <= params_end && j < sig.size();
         ++j) {
      const std::string_view t = text(j);
      if (t == "(") {
        ++depth;
        continue;
      }
      if (t == ")") {
        if (--depth == 0) {
          if (!by_ref && !last_ident.empty()) owners.insert(last_ident);
          break;
        }
        continue;
      }
      if (t == "<") {
        j = skip_template_args(sig, j) - 1;
        continue;
      }
      if (depth != 1) continue;
      if (t == ",") {
        if (!by_ref && !last_ident.empty()) owners.insert(last_ident);
        by_ref = false;
        last_ident.clear();
        continue;
      }
      if (t == "&" || t == "&&" || t == "*") by_ref = true;
      if (kind(j) == TokKind::kIdentifier && t != "const") {
        last_ident = std::string(t);
      }
    }
  }
  // ... and body-declared objects (`Type name`; reference/pointer locals
  // never match the two-identifier pattern because & or * intervenes).
  bool has_scope = false;
  std::size_t scope_line = 0;
  for (std::size_t j = body_begin; j < body_end && j + 1 < sig.size(); ++j) {
    if (kind(j) != TokKind::kIdentifier ||
        kind(j + 1) != TokKind::kIdentifier) {
      continue;
    }
    const std::string_view a = text(j);
    if (kNotCallable.count(a) != 0 || a == "const" || a == "struct" ||
        a == "class" || a == "enum") {
      continue;
    }
    const std::string_view after = text(j + 2);
    if (after != "=" && after != ";" && after != "(" && after != "{") {
      continue;
    }
    if (a == "Scope") {
      has_scope = true;
      if (scope_line == 0) scope_line = sig[j].line;
    } else {
      owners.insert(std::string(text(j + 1)));
    }
  }
  // Variables bound from a producer call, split by receiver locality.
  std::set<std::string> view_vars_local;  // receiver is a local owner
  std::set<std::string> view_vars_any;
  for (std::size_t j = body_begin; j < body_end; ++j) {
    if (text(j) != "=" || kind(j - 1) != TokKind::kIdentifier) continue;
    const std::string var(text(j - 1));
    for (std::size_t m = j + 1; m < body_end && text(m) != ";"; ++m) {
      if (!is_view_producer(sig, m)) continue;
      view_vars_any.insert(var);
      if ((tok_prev(sig, m) == "." || tok_prev(sig, m) == "->") && m >= 2 &&
          owners.count(std::string(text(m - 2))) != 0) {
        view_vars_local.insert(var);
      }
      break;
    }
  }
  // Return statements handing any of those out.
  for (std::size_t j = body_begin; j < body_end; ++j) {
    if (text(j) != "return" || kind(j) != TokKind::kIdentifier) continue;
    std::size_t stmt_end = j + 1;
    while (stmt_end < body_end && text(stmt_end) != ";") ++stmt_end;
    bool flagged = false;
    for (std::size_t m = j + 1; m < stmt_end && !flagged; ++m) {
      if (is_view_producer(sig, m)) {
        const bool member =
            tok_prev(sig, m) == "." || tok_prev(sig, m) == "->";
        const std::string recv =
            member && m >= 2 ? std::string(text(m - 2)) : "";
        if (!recv.empty() && owners.count(recv) != 0) {
          emit("view-lifetime", sig[m].line,
               "'" + qualified + "' returns the view produced by '" +
                   std::string(text(m)) + "' on local '" + recv +
                   "', whose storage dies when this function returns");
          flagged = true;
        } else if (has_scope) {
          emit("view-lifetime", sig[m].line,
               "'" + qualified + "' returns the view produced by '" +
                   std::string(text(m)) +
                   "' past the Workspace::Scope (line " +
                   std::to_string(scope_line) + ") that owns its storage");
          flagged = true;
        }
      } else if (kind(m) == TokKind::kIdentifier) {
        const std::string v(text(m));
        if (view_vars_local.count(v) != 0) {
          emit("view-lifetime", sig[m].line,
               "'" + qualified + "' returns view variable '" + v +
                   "' whose backing local dies when this function returns");
          flagged = true;
        } else if (has_scope && view_vars_any.count(v) != 0) {
          emit("view-lifetime", sig[m].line,
               "'" + qualified + "' returns view variable '" + v +
                   "' past the Workspace::Scope (line " +
                   std::to_string(scope_line) + ") that owns its storage");
          flagged = true;
        }
      }
    }
  }
}

}  // namespace

void Linter::scan_symbols(std::size_t file_index,
                          std::vector<Diagnostic>& pending) {
  FileState& state = files_[file_index];
  const std::vector<Token>& sig = state.sig;
  const std::string& path = state.path;
  const auto text = [&](std::size_t i) { return tok_text(sig, i); };
  const auto kind = [&](std::size_t i) { return tok_kind(sig, i); };
  const auto prev_text = [&](std::size_t i) { return tok_prev(sig, i); };
  const auto emit = [&](const char* rule, std::size_t line,
                        std::string message) {
    pending.push_back({rule, path, line, std::move(message), {}});
  };

  // std::function-typed names: calls through them are opaque edges.
  std::set<std::string> fn_vars;
  for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
    if (kind(i) != TokKind::kIdentifier || text(i) != "function" ||
        prev_text(i) != "::") {
      continue;
    }
    std::size_t j = i + 1;
    if (text(j) == "<") j = skip_template_args(sig, j);
    while (text(j) == "&" || text(j) == "&&" || text(j) == "*" ||
           text(j) == "const") {
      ++j;
    }
    if (kind(j) == TokKind::kIdentifier) fn_vars.insert(std::string(text(j)));
  }

  // Declared-type map: `T name`, `T& name`, `T* name` (locals, params, and
  // data members alike) record name -> T so member-call resolution can
  // bind `clamps.add()` to Counter::add instead of every `add` in the
  // repo. unique_ptr/shared_ptr record their pointee instead, so
  // `gen_->forward(...)` through a smart pointer still resolves. A
  // file-wide heuristic: name collisions across functions keep the first
  // sighting, and unknown receivers fall back to name-only resolution.
  std::map<std::string, std::string> var_types;
  for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
    if (kind(i) != TokKind::kIdentifier) continue;
    std::string type_name(text(i));
    if (kNotCallable.count(type_name) != 0 || type_name == "const" ||
        type_name == "struct" || type_name == "class" ||
        type_name == "enum" || type_name == "auto") {
      continue;
    }
    std::size_t j = i + 1;
    if (type_name == "unique_ptr" || type_name == "shared_ptr") {
      if (text(j) != "<") continue;
      const std::size_t close = skip_template_args(sig, j) - 1;
      type_name.clear();
      for (std::size_t m = j + 1; m < close; ++m) {
        if (kind(m) == TokKind::kIdentifier) type_name = std::string(text(m));
      }
      if (type_name.empty()) continue;
      j = close + 1;
    } else if (text(j) == "<") {
      j = skip_template_args(sig, j);
    }
    while (text(j) == "&" || text(j) == "&&" || text(j) == "*" ||
           text(j) == "const") {
      ++j;
    }
    if (kind(j) != TokKind::kIdentifier) continue;
    const std::string_view after = text(j + 1);
    if (after != "=" && after != ";" && after != "(" && after != "{" &&
        after != "," && after != ")") {
      continue;
    }
    var_types.emplace(std::string(text(j)), type_name);
  }

  enum FrameKind { kNs, kCls, kBlk };
  struct Frame {
    FrameKind fkind;
    std::string name;
    std::size_t func;  // kBlk only: function whose body this brace opens
  };
  std::vector<Frame> stack;
  std::map<std::size_t, std::size_t> body_open;  // '{' index -> func index
  bool pending_virtual = false;

  const auto qualified_prefix = [&]() {
    std::string q;
    for (const Frame& f : stack) {
      if (f.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += f.name;
    }
    return q;
  };
  const auto enclosing_function = [&]() -> std::size_t {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->func != kNpos) return it->func;
    }
    return kNpos;
  };

  for (std::size_t i = 0; i < sig.size(); ++i) {
    const std::string_view id = text(i);
    if (id == "{") {
      const auto it = body_open.find(i);
      stack.push_back({kBlk, "", it == body_open.end() ? kNpos : it->second});
      pending_virtual = false;
      continue;
    }
    if (id == "}") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (id == ";") {
      pending_virtual = false;
      continue;
    }
    if (kind(i) != TokKind::kIdentifier) continue;
    const bool at_scope = stack.empty() || stack.back().fkind != kBlk;

    if (id == "virtual") {
      pending_virtual = true;
      continue;
    }
    if (id == "namespace" && at_scope) {
      std::size_t j = i + 1;
      std::string name;
      while (kind(j) == TokKind::kIdentifier || text(j) == "::") {
        if (text(j) != "::") {
          if (!name.empty()) name += "::";
          name += text(j);
        }
        ++j;
      }
      if (text(j) == "{") {
        stack.push_back({kNs, name, kNpos});
        i = j;  // frame pushed here; skip the '{' handler
      } else if (text(j) == "=") {  // namespace alias
        while (j < sig.size() && text(j) != ";") ++j;
        i = j;
      }
      continue;
    }
    if (id == "enum" && at_scope) {
      std::size_t j = i + 1;
      while (j < sig.size() && text(j) != "{" && text(j) != ";") ++j;
      if (text(j) == "{") j = match_brace(sig, j);
      i = j;  // enumerators never define functions
      continue;
    }
    if ((id == "class" || id == "struct" || id == "union") && at_scope) {
      std::size_t j = i + 1;
      std::string name;
      if (kind(j) == TokKind::kIdentifier) {
        name = std::string(text(j));
        ++j;
      }
      if (text(j) == "<") j = skip_template_args(sig, j);
      if (text(j) == "final") ++j;
      if (text(j) == ":") {  // base clause
        while (j < sig.size() && text(j) != "{" && text(j) != ";") {
          if (text(j) == "<") {
            j = skip_template_args(sig, j);
            continue;
          }
          ++j;
        }
      }
      if (!name.empty()) class_names_.insert(name);
      if (text(j) == "{" && !name.empty()) {
        stack.push_back({kCls, name, kNpos});
        i = j;
      }
      continue;  // elaborated specifier / forward declaration otherwise
    }

    if (text(i + 1) != "(" || kNotCallable.count(id) != 0) continue;
    const std::string_view prev = prev_text(i);
    if (prev == "~") continue;  // destructors: not named calls, not needed

    if (at_scope) {
      // ---- candidate function declarator at namespace/class scope --------
      if (prev == "." || prev == "->" || prev == "(" || prev == "," ||
          prev == "=" || prev == "return" || prev == "new" || prev == "!" ||
          prev == "&&" || prev == "+" || prev == "-" || prev == "?") {
        continue;
      }
      // Out-of-line qualifiers: `Type Foo::bar(` — walk `ident ::` back.
      std::string explicit_scope;
      std::size_t name_begin = i;
      while (name_begin >= 2 && text(name_begin - 1) == "::" &&
             kind(name_begin - 2) == TokKind::kIdentifier) {
        explicit_scope =
            std::string(text(name_begin - 2)) +
            (explicit_scope.empty() ? "" : "::") + explicit_scope;
        name_begin -= 2;
      }
      const std::size_t params_open = i + 1;
      std::size_t j = skip_parens(sig, params_open);  // one past ')'
      const std::size_t params_end = j - 1;
      while (j < sig.size()) {
        const std::string_view t = text(j);
        if (t == "const" || t == "override" || t == "final" || t == "&" ||
            t == "&&" || t == "mutable" || t == "constexpr") {
          ++j;
          continue;
        }
        if (t == "noexcept") {
          ++j;
          if (text(j) == "(") j = skip_parens(sig, j);
          continue;
        }
        if (t == "->") {  // trailing return type
          ++j;
          while (j < sig.size() && text(j) != "{" && text(j) != ";" &&
                 text(j) != "=") {
            if (text(j) == "<") {
              j = skip_template_args(sig, j);
              continue;
            }
            if (text(j) == "(") {
              j = skip_parens(sig, j);
              continue;
            }
            ++j;
          }
          continue;
        }
        break;
      }
      std::size_t body = kNpos;
      if (text(j) == "{") {
        body = j;
      } else if (text(j) == ":") {  // constructor initializer list
        std::size_t m = j + 1;
        while (m < sig.size()) {
          while (kind(m) == TokKind::kIdentifier || text(m) == "::") ++m;
          if (text(m) == "<") m = skip_template_args(sig, m);
          if (text(m) == "(") {
            m = skip_parens(sig, m);
          } else if (text(m) == "{") {
            m = match_brace(sig, m) + 1;
          } else {
            break;
          }
          if (text(m) == "...") ++m;  // pack-expanded base initializer
          if (text(m) == ",") {
            ++m;
            continue;
          }
          if (text(m) == "{") body = m;
          break;
        }
      } else if (text(j) == "=" || text(j) == ";") {
        // Declaration only: `= 0`, `= default`, `= delete`, or plain `;`.
        if (pending_virtual || text(j + 1) == "0") {
          virtual_names_.insert(std::string(id));
        }
        pending_virtual = false;
        i = j;
        continue;
      } else {
        continue;  // macro invocation / initializer — not a declarator
      }
      if (body == kNpos) continue;

      FunctionDef def;
      def.name = std::string(id);
      def.qualified = qualified_prefix();
      if (!explicit_scope.empty()) {
        def.qualified +=
            def.qualified.empty() ? explicit_scope : "::" + explicit_scope;
      }
      def.qualified += def.qualified.empty() ? def.name : "::" + def.name;
      def.file_index = file_index;
      def.line = sig[i].line;
      def.body_begin = body;
      def.body_end = match_brace(sig, body);
      def.is_virtual = pending_virtual;
      // Return type carrying & or * means the function hands out a borrow.
      for (std::size_t b = name_begin; b > 0;) {
        const std::string_view t = text(--b);
        if (t == ";" || t == "{" || t == "}" || t == "public" ||
            t == "private" || t == "protected" || t == ":" ||
            name_begin - b > 24) {
          break;
        }
        if (t == "&" || t == "*" || t == "&&") def.returns_indirection = true;
        if (t == "noreturn") def.is_noreturn = true;  // [[noreturn]]
      }
      if (pending_virtual) virtual_names_.insert(def.name);
      pending_virtual = false;
      body_open[body] = functions_.size();
      functions_.push_back(def);
      if (def.returns_indirection && !ends_with(def.name, "_view")) {
        check_view_lifetime_fn(sig, params_open, params_end, body,
                               def.body_end, def.qualified, emit);
      }
      i = body - 1;  // skip params/init-list; the body '{' pushes the frame
      continue;
    }

    // ---- call site inside a function body --------------------------------
    const bool member = prev == "." || prev == "->";
    if (!member) {
      if (prev == "new") continue;  // ctor via new: allocation rules own it
      // `throw Error(...)`: the exceptional path is exempt from
      // propagation — dimension checks throw from hot code by design,
      // and walking into exception constructors would ban that.
      if (prev == "throw") continue;
      if (prev == ">") continue;  // `vector<int> v(...)` is a declaration
      if (kind(i - 1) == TokKind::kIdentifier && prev != "return" &&
          prev != "else" && prev != "do" && prev != "co_return") {
        continue;  // `Type name(...)` is a declaration, not a call
      }
    }
    std::string callee(id);
    if (!member) {
      std::size_t b = i;
      while (b >= 2 && text(b - 1) == "::" &&
             kind(b - 2) == TokKind::kIdentifier) {
        callee = std::string(text(b - 2)) + "::" + callee;
        b -= 2;
      }
    }
    if (callee.rfind("std::", 0) == 0) continue;
    if (member && kStdMemberNames.count(id) != 0) continue;
    // Receiver type for member calls (`x.f(` / `p->f(`): a plain
    // identifier receiver with a known declared type narrows resolution.
    std::string receiver_type;
    if (member && i >= 2 && kind(i - 2) == TokKind::kIdentifier) {
      const auto rt = var_types.find(std::string(text(i - 2)));
      if (rt != var_types.end()) receiver_type = rt->second;
    }
    // `static X& x = f(...)` initializers run once per process.
    bool in_static_init = false;
    for (std::size_t b = i; b > 0; --b) {
      const std::string_view t = text(b - 1);
      if (t == ";" || t == "{" || t == "}") break;
      if (t == "static" || t == "thread_local") {
        in_static_init = true;
        break;
      }
    }
    calls_.push_back({enclosing_function(), callee, file_index, sig[i].line,
                      fn_vars.count(callee) != 0, receiver_type,
                      in_static_init, member});
  }
}

void Linter::check_atomics(std::size_t file_index,
                           const std::vector<SeqRegion>& seq_regions,
                           std::vector<Diagnostic>& pending) {
  FileState& state = files_[file_index];
  const std::vector<Token>& sig = state.sig;
  const auto text = [&](std::size_t i) { return tok_text(sig, i); };
  const auto emit = [&](std::size_t line, std::string message) {
    pending.push_back(
        {"atomics-ordering", state.path, line, std::move(message), {}});
  };
  for (const SeqRegion& r : seq_regions) {
    bool have_store = false;
    bool last_store_relaxed = false;
    std::size_t last_store_line = 0;
    bool have_release = false;
    bool have_acquire = false;
    for (std::size_t i = 0; i < sig.size(); ++i) {
      const std::size_t line = sig[i].line;
      if (line < r.begin_line || line > r.end_line) continue;
      if (tok_kind(sig, i) != TokKind::kIdentifier) continue;
      const std::string_view id = text(i);
      if (id == "memory_order_consume") {
        emit(line,
             "memory_order_consume inside a seqlock region (no mainstream "
             "compiler implements consume; it silently promotes to acquire "
             "— say what you mean)");
        continue;
      }
      const std::string_view prev = tok_prev(sig, i);
      const bool member = prev == "." || prev == "->";
      if (text(i + 1) != "(") continue;
      // Collect the memory_order arguments of this call; no explicit
      // order means the seq_cst default, which is release- and
      // acquire-strength.
      bool relaxed = false;
      bool acquire = false;
      bool release = false;
      bool explicit_order = false;
      const std::size_t close = skip_parens(sig, i + 1);
      for (std::size_t m = i + 2; m + 1 < close; ++m) {
        const std::string_view a = text(m);
        if (a == "memory_order_relaxed") {
          relaxed = true;
          explicit_order = true;
        } else if (a == "memory_order_acquire") {
          acquire = true;
          explicit_order = true;
        } else if (a == "memory_order_release") {
          release = true;
          explicit_order = true;
        } else if (a == "memory_order_acq_rel" ||
                   a == "memory_order_seq_cst") {
          acquire = release = true;
          explicit_order = true;
        }
      }
      if (!explicit_order) acquire = release = true;
      if (member && id == "store") {
        have_store = true;
        last_store_relaxed = relaxed && !release;
        last_store_line = line;
        if (release) have_release = true;
      } else if (member && id == "load") {
        if (acquire) have_acquire = true;
      } else if (id == "atomic_thread_fence") {
        if (release) have_release = true;
        if (acquire) have_acquire = true;
      }
    }
    if (r.writer) {
      if (!have_store) {
        emit(r.begin_line,
             "seqlock(writer) region performs no atomic store; the "
             "annotation documents a publish protocol that is not here");
      } else if (last_store_relaxed) {
        emit(last_store_line,
             "commit store of a seqlock(writer) region uses "
             "memory_order_relaxed; the final (publishing) store must be "
             "memory_order_release or stronger, or readers can observe the "
             "even stamp before the payload");
      }
      if (have_store && !have_release) {
        emit(r.begin_line,
             "seqlock(writer) region never releases: at least one store or "
             "fence must be memory_order_release or stronger");
      }
    } else if (!have_acquire) {
      emit(r.begin_line,
           "seqlock(reader) region never acquires: the stamp load (or a "
           "fence) must be memory_order_acquire or stronger, or payload "
           "reads can be hoisted above it");
    }
  }
}

void Linter::finish() {
  propagate_constraints();
  emit_unused_allows();
  check_cycles();
  check_manifest();
}

void Linter::propagate_constraints() {
  // ---- Resolve call sites against the repo-wide symbol table ---------------
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t idx = 0; idx < functions_.size(); ++idx) {
    by_name[functions_[idx].name].push_back(idx);
  }
  // Suffix resolution: "a::B::f" matches any definition whose qualified
  // name ends in those segments. A known receiver type narrows a member
  // call to `Type::name` (and resolves to nothing when no repo class of
  // that name defines it — the receiver is std:: or external); an unknown
  // receiver falls back to every definition with the same last name.
  const auto resolve_qualified =
      [&](const std::string& callee) -> std::vector<std::size_t> {
    std::vector<std::size_t> out;
    const std::size_t pos = callee.rfind("::");
    const std::string last =
        pos == std::string::npos ? callee : callee.substr(pos + 2);
    const auto it = by_name.find(last);
    if (it == by_name.end()) return out;
    if (pos == std::string::npos) return it->second;
    for (std::size_t idx : it->second) {
      const std::string& q = functions_[idx].qualified;
      if (q == callee) {
        out.push_back(idx);
      } else if (q.size() > callee.size() + 2 &&
                 q.compare(q.size() - callee.size(), callee.size(),
                           callee) == 0 &&
                 q.compare(q.size() - callee.size() - 2, 2, "::") == 0) {
        out.push_back(idx);  // segment-aligned suffix: a::B::f matches B::f
      }
    }
    return out;
  };
  const auto resolve = [&](const CallSite& site) {
    if (!site.receiver_type.empty()) {
      return resolve_qualified(site.receiver_type + "::" + site.callee_text);
    }
    return resolve_qualified(site.callee_text);
  };
  // Resolve every site once. A member call with an unknown receiver that
  // lands in more than one class is ambiguous: the scanner cannot tell
  // which class's method runs, so the edge is recorded opaque instead of
  // fanning the constraint out to every same-named method in the repo.
  struct SiteResolution {
    std::vector<std::size_t> targets;
    bool ambiguous = false;
  };
  std::vector<SiteResolution> site_res(calls_.size());
  for (std::size_t s = 0; s < calls_.size(); ++s) {
    const CallSite& site = calls_[s];
    if (site.via_function_object) continue;
    SiteResolution& r = site_res[s];
    r.targets = resolve(site);
    if (site.member_call && site.receiver_type.empty()) {
      // `x.f(` runs a member function: candidates defined at namespace
      // scope cannot be the target, so drop them before deciding whether
      // the remaining set is ambiguous.
      std::vector<std::size_t> members;
      std::set<std::string> scopes;
      for (std::size_t t : r.targets) {
        const std::string& q = functions_[t].qualified;
        const std::size_t end = q.rfind("::");
        if (end == std::string::npos) continue;
        const std::size_t begin = q.rfind("::", end - 1);
        const std::string parent =
            q.substr(begin == std::string::npos ? 0 : begin + 2,
                     end - (begin == std::string::npos ? 0 : begin + 2));
        if (class_names_.count(parent) == 0) continue;
        members.push_back(t);
        scopes.insert(q.substr(0, end));
      }
      r.targets = std::move(members);
      r.ambiguous = scopes.size() > 1;
    }
  }

  struct Hop {
    std::size_t target;
    std::size_t site;
  };
  std::vector<std::vector<Hop>> adj(functions_.size());
  for (std::size_t s = 0; s < calls_.size(); ++s) {
    const CallSite& site = calls_[s];
    const std::string caller_name =
        site.caller == kNpos ? "<file-scope>"
                             : functions_[site.caller].qualified;
    const std::string& site_file = files_[site.file_index].path;
    if (site.via_function_object) {
      call_edge_infos_.push_back({caller_name, site.callee_text, site_file,
                                  site.line, true, "std::function"});
      continue;
    }
    for (std::size_t t : site_res[s].targets) {
      const FunctionDef& callee = functions_[t];
      const bool virt =
          callee.is_virtual || virtual_names_.count(callee.name) != 0;
      const bool opaque = virt || site_res[s].ambiguous;
      call_edge_infos_.push_back(
          {caller_name, callee.qualified, site_file, site.line, opaque,
           opaque ? (virt ? "virtual" : "ambiguous receiver") : ""});
      if (!opaque && site.caller != kNpos) adj[site.caller].push_back({t, s});
    }
  }

  const auto in_regions = [](const std::vector<Region>& rs,
                             std::size_t line) {
    for (const Region& r : rs) {
      if (line >= r.begin_line && line <= r.end_line) return true;
    }
    return false;
  };
  const auto site_label = [&](std::size_t caller, std::size_t site_idx) {
    const CallSite& s = calls_[site_idx];
    return (caller == kNpos ? std::string("<file-scope>")
                            : functions_[caller].qualified) +
           " (" + files_[s.file_index].path + ":" + std::to_string(s.line) +
           ")";
  };

  // ---- BFS from annotated regions over non-opaque edges --------------------
  const auto propagate = [&](bool hot) {
    std::map<std::size_t, std::vector<std::string>> chains;
    std::deque<std::size_t> queue;
    for (std::size_t s = 0; s < calls_.size(); ++s) {
      const CallSite& site = calls_[s];
      const FileState& st = files_[site.file_index];
      if (!in_regions(hot ? st.hot_regions : st.signal_regions, site.line)) {
        continue;
      }
      if (site.via_function_object) continue;
      if (hot && site.in_static_init) continue;  // runs once, not per-pass
      if (site_res[s].ambiguous) continue;
      for (std::size_t t : site_res[s].targets) {
        const FunctionDef& callee = functions_[t];
        if (callee.is_virtual || virtual_names_.count(callee.name) != 0) {
          continue;  // opaque: in the edge list as evidence, not traversed
        }
        if (hot && callee.is_noreturn) continue;  // error path by decl
        if (chains.count(t) != 0) continue;
        chains[t] = {site_label(site.caller, s)};
        queue.push_back(t);
      }
    }
    while (!queue.empty()) {
      const std::size_t f = queue.front();
      queue.pop_front();
      for (const Hop& hop : adj[f]) {
        if (chains.count(hop.target) != 0) continue;
        if (hot && calls_[hop.site].in_static_init) continue;
        if (hot && functions_[hop.target].is_noreturn) continue;
        std::vector<std::string> chain = chains[f];
        chain.push_back(site_label(f, hop.site));
        chains[hop.target] = std::move(chain);
        queue.push_back(hop.target);
      }
    }
    return chains;
  };
  const auto hot_chains = propagate(true);
  const auto signal_chains = propagate(false);

  // ---- Re-scan constrained bodies with the region checks -------------------
  const auto scan_constrained = [&](bool hot, std::size_t func_idx,
                                    const std::vector<std::string>& chain) {
    const FunctionDef& f = functions_[func_idx];
    FileState& st = files_[f.file_index];
    const std::vector<Token>& sig = st.sig;
    std::string chain_text;
    for (const std::string& hop : chain) chain_text += hop + " -> ";
    chain_text += f.qualified;
    const std::string ctx =
        std::string(hot ? "in hot-path-reachable function '"
                        : "in signal-context-reachable function '") +
        f.qualified + "'";
    const auto emit = [&](const char* rule, std::size_t line,
                          std::string message) {
      Diagnostic d{rule, st.path, line,
                   std::move(message) + "; call chain: " + chain_text,
                   chain};
      d.chain.push_back(f.qualified + " (" + st.path + ":" +
                        std::to_string(line) + ")");
      if (!apply_suppression(st, d)) diagnostics_.push_back(std::move(d));
    };
    // Lines inside a lexical region of the same kind are already checked
    // by pass 3; re-flagging them here would double-report.
    const std::vector<Region>& covered =
        hot ? st.hot_regions : st.signal_regions;
    for (std::size_t i = f.body_begin; i <= f.body_end && i < sig.size();
         ++i) {
      if (in_regions(covered, sig[i].line)) continue;
      i = hot ? check_hot_token(sig, i, ctx, emit)
              : check_signal_token(sig, i, ctx, emit);
    }
  };
  for (const auto& [func_idx, chain] : hot_chains) {
    scan_constrained(true, func_idx, chain);
    reach_entries_.push_back(
        {"hot-path", functions_[func_idx].qualified, chain});
  }
  for (const auto& [func_idx, chain] : signal_chains) {
    scan_constrained(false, func_idx, chain);
    reach_entries_.push_back(
        {"signal-context", functions_[func_idx].qualified, chain});
  }

  // ---- Export the symbol table for the lintdb artifact ---------------------
  for (std::size_t idx = 0; idx < functions_.size(); ++idx) {
    const FunctionDef& f = functions_[idx];
    const FileState& st = files_[f.file_index];
    const auto overlaps = [&](const std::vector<Region>& rs) {
      if (f.body_begin >= st.sig.size()) return false;
      const std::size_t lo = st.sig[f.body_begin].line;
      const std::size_t hi =
          f.body_end < st.sig.size() ? st.sig[f.body_end].line : lo;
      for (const Region& r : rs) {
        if (r.begin_line <= hi && r.end_line >= lo) return true;
      }
      return false;
    };
    function_infos_.push_back(
        {f.qualified, st.path, f.line,
         f.is_virtual || virtual_names_.count(f.name) != 0,
         hot_chains.count(idx) != 0 || overlaps(st.hot_regions),
         signal_chains.count(idx) != 0 || overlaps(st.signal_regions)});
  }
}

void Linter::emit_unused_allows() {
  for (const FileState& st : files_) {
    for (const auto& [line, rules] : st.allows) {
      for (const auto& [rule, used] : rules) {
        if (used) continue;
        diagnostics_.push_back(
            {"unused-allow", st.path, line,
             "allow(" + rule +
                 ") suppresses nothing (stale suppression: remove it, or "
                 "fix the rule name)",
             {}});
      }
    }
  }
}

void Linter::check_cycles() {
  // ---- Module-cycle detection over the observed include edges --------------
  std::set<std::string> modules;
  for (const IncludeEdge& e : edges_) {
    modules.insert(e.from);
    modules.insert(e.to);
  }
  // Iterative grey/black DFS; module graphs are tiny. One diagnostic per
  // detected back edge, attributed to the include site that closed the
  // cycle.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  const IncludeEdge* back_edge = nullptr;
  std::string cycle_text;
  for (const std::string& root : modules) {
    if (color[root] != 0 || back_edge != nullptr) continue;
    // Each frame: (node, index of the next outgoing edge to try).
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty() && back_edge == nullptr) {
      auto& [node, next_edge] = stack.back();
      bool descended = false;
      for (std::size_t k = next_edge; k < edges_.size(); ++k) {
        const IncludeEdge& e = edges_[k];
        if (e.from != node) continue;
        if (color[e.to] == 1) {
          back_edge = &e;
          cycle_text = e.to;
          bool in_cycle = false;
          for (const auto& [name, unused] : stack) {
            (void)unused;
            if (name == e.to) in_cycle = true;
            if (in_cycle && name != e.to) cycle_text += " -> " + name;
          }
          cycle_text += " -> " + e.to;
          break;
        }
        if (color[e.to] == 0) {
          next_edge = k + 1;
          color[e.to] = 1;
          stack.emplace_back(e.to, 0);
          descended = true;
          break;
        }
      }
      if (back_edge != nullptr) break;
      if (!descended) {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  if (back_edge != nullptr) {
    diagnostics_.push_back(
        {"layer-cycle", back_edge->file, back_edge->line,
         "module include cycle: " + cycle_text, {}});
  }
}

void Linter::check_manifest() {
  if (options_.manifest_path.empty()) return;
  std::ifstream in(options_.manifest_path);
  if (!in) {
    diagnostics_.push_back({"obs-manifest", options_.manifest_path, 0,
                            "manifest file cannot be opened", {}});
    return;
  }
  struct ManifestEntry {
    std::string kind;
    std::string name;
    std::size_t line;
    bool seen = false;
  };
  std::vector<ManifestEntry> manifest;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::stringstream fields(raw);
    std::string kind_field;
    std::string name_field;
    std::string extra;
    if (!(fields >> kind_field)) continue;  // blank/comment line
    if (!(fields >> name_field) || (fields >> extra)) {
      diagnostics_.push_back(
          {"obs-manifest", options_.manifest_path, line_no,
           "manifest line must be '<kind> <name>'", {}});
      continue;
    }
    if (kind_field != "counter" && kind_field != "gauge" &&
        kind_field != "histogram" && kind_field != "series" &&
        kind_field != "span") {
      diagnostics_.push_back(
          {"obs-manifest", options_.manifest_path, line_no,
           "unknown metric kind '" + kind_field + "'", {}});
      continue;
    }
    manifest.push_back({kind_field, name_field, line_no});
  }
  for (const Registration& reg : registrations_) {
    bool found = false;
    for (ManifestEntry& entry : manifest) {
      if (entry.kind == reg.kind && entry.name == reg.name) {
        entry.seen = true;
        found = true;
      }
    }
    if (!found) {
      diagnostics_.push_back(
          {"obs-manifest", reg.file, reg.line,
           reg.kind + " '" + reg.name +
               "' is not in the metrics manifest (add it to keep the "
               "dashboard namespace reviewed)", {}});
    }
  }
  for (const ManifestEntry& entry : manifest) {
    if (!entry.seen) {
      diagnostics_.push_back(
          {"obs-manifest", options_.manifest_path, entry.line,
           entry.kind + " '" + entry.name +
               "' is in the manifest but no scanned source registers it "
               "(stale entry?)", {}});
    }
  }
}

}  // namespace gansec::lint
