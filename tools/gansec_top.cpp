// gansec_top — live terminal dashboard for a running `gansec` process
// started with `--expose PORT`.
//
// Polls http://HOST:PORT/metrics (OpenMetrics) and /profilez (collapsed
// stacks, when --profile is active) and renders a refreshing table:
// training iterations/s, generator/discriminator loss p50, RSS, CPU%,
// thread count, workspace allocation rate, and the top-5 hottest stacks.
// When the process is running the streaming monitor (`gansec serve`), an
// extra panel shows windows/s, the verdict mix, and per-stream latency
// p50/p95/p99 from the serve.* instruments.
//
// usage: gansec_top --port P [--host H] [--interval S] [--count N]
//                   [--no-ansi]
//   --count N     exit after N refreshes (0 = run until ^C); the smoke
//                 tests use --count 1
//   --no-ansi     plain append-only output (no clear-screen escapes)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "gansec/error.hpp"
#include "gansec/obs/http.hpp"
#include "gansec/obs/openmetrics.hpp"

namespace {

using gansec::obs::OpenMetricsFamily;
using gansec::obs::http_get;
using gansec::obs::openmetrics_value;
using gansec::obs::parse_openmetrics;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double interval_s = 1.0;
  std::uint64_t count = 0;  ///< 0 = forever
  bool ansi = true;
};

int usage() {
  std::cerr << "usage: gansec_top --port P [--host H] [--interval S]"
               " [--count N] [--no-ansi]\n";
  return 2;
}

bool parse_options(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return false;
      opts.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return false;
      opts.host = v;
    } else if (arg == "--interval") {
      const char* v = value();
      if (v == nullptr) return false;
      opts.interval_s = std::atof(v);
    } else if (arg == "--count") {
      const char* v = value();
      if (v == nullptr) return false;
      opts.count = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--no-ansi") {
      opts.ansi = false;
    } else {
      return false;
    }
  }
  return opts.port != 0;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, units[unit]);
  return buf;
}

/// Percentile estimate from an OpenMetrics histogram family: reads the
/// cumulative _bucket samples, finds the bucket holding rank
/// count * q / 100, and interpolates linearly inside it.
double histogram_percentile(const std::vector<OpenMetricsFamily>& families,
                            const std::string& family_name, double q) {
  for (const auto& family : families) {
    if (family.name != family_name) continue;
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    for (const auto& sample : family.samples) {
      if (sample.name != family_name + "_bucket") continue;
      for (const auto& [key, val] : sample.labels) {
        if (key != "le") continue;
        const double le = val == "+Inf"
                              ? std::numeric_limits<double>::infinity()
                              : std::atof(val.c_str());
        buckets.emplace_back(le, sample.value);
      }
    }
    if (buckets.empty()) return 0.0;
    std::sort(buckets.begin(), buckets.end());
    const double total = buckets.back().second;
    if (total <= 0.0) return 0.0;
    const double rank = total * q / 100.0;
    double lower_edge = 0.0;
    double lower_cum = 0.0;
    for (const auto& [le, cum] : buckets) {
      if (cum >= rank) {
        if (std::isinf(le)) return lower_edge;  // mass in overflow bucket
        const double in_bucket = cum - lower_cum;
        if (in_bucket <= 0.0) return le;
        return lower_edge + (le - lower_edge) * (rank - lower_cum) / in_bucket;
      }
      lower_edge = le;
      lower_cum = cum;
    }
    return lower_edge;
  }
  return 0.0;
}

/// Top-N hottest stacks from a /profilez collapsed-stack body. Each
/// line is "frame;frame;...;leaf count"; returns (leaf frame, count)
/// sorted by count descending.
std::vector<std::pair<std::string, std::uint64_t>> top_stacks(
    const std::string& folded, std::size_t n) {
  std::vector<std::pair<std::string, std::uint64_t>> stacks;
  std::size_t start = 0;
  while (start < folded.size()) {
    std::size_t end = folded.find('\n', start);
    if (end == std::string::npos) end = folded.size();
    const std::string line = folded.substr(start, end - start);
    start = end + 1;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::uint64_t count =
        static_cast<std::uint64_t>(std::atoll(line.c_str() + space + 1));
    std::string stack = line.substr(0, space);
    const std::size_t leaf = stack.rfind(';');
    if (leaf != std::string::npos) stack = stack.substr(leaf + 1);
    stacks.emplace_back(std::move(stack), count);
  }
  // Count-descending, name tie-break: deterministic without stable_sort
  // (whose temporary buffer trips ASan alloc-dealloc-mismatch here).
  std::sort(stacks.begin(), stacks.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (stacks.size() > n) stacks.resize(n);
  return stacks;
}

/// The streaming-monitor panel, shown whenever the scraped process has
/// scored serve windows: global throughput + verdict mix, then one row
/// per stream with windows and latency p50/p95/p99 read from the
/// dynamic serve.stream.<i>.* instruments.
void render_serve(const std::vector<OpenMetricsFamily>& families,
                  double windows_per_s) {
  const double scored =
      openmetrics_value(families, "serve_windows_scored_total");
  if (scored <= 0.0) return;
  const double dropped =
      openmetrics_value(families, "serve_windows_dropped_total");
  const double benign =
      openmetrics_value(families, "serve_verdict_benign_total");
  const double integrity =
      openmetrics_value(families, "serve_verdict_integrity_total");
  const double availability =
      openmetrics_value(families, "serve_verdict_availability_total");
  const double swaps = openmetrics_value(families, "serve_model_swaps_total");
  const auto streams = static_cast<std::uint64_t>(
      openmetrics_value(families, "serve_streams"));
  const double workers = openmetrics_value(families, "serve_workers");

  char line[160];
  std::cout << "\n  streaming monitor (" << streams << " streams, "
            << static_cast<std::uint64_t>(workers) << " workers):\n";
  std::snprintf(line, sizeof line, "  %-14s %12.0f   %-14s %12.1f\n",
                "scored", scored, "windows/s", windows_per_s);
  std::cout << line;
  std::snprintf(line, sizeof line, "  %-14s %12.0f   %-14s %12.0f\n",
                "dropped", dropped, "model swaps", swaps);
  std::cout << line;
  std::snprintf(line, sizeof line,
                "  %-14s %12.0f   integ/avail %6.0f/%6.0f\n", "benign",
                benign, integrity, availability);
  std::cout << line;
  std::snprintf(line, sizeof line, "  %6s %10s %10s %10s %10s\n", "stream",
                "windows", "p50_us", "p95_us", "p99_us");
  std::cout << line;
  for (std::uint64_t s = 0; s < streams; ++s) {
    const std::string scope = "serve_stream_" + std::to_string(s);
    const double windows =
        openmetrics_value(families, scope + "_windows_total");
    const std::string hist = scope + "_latency_us";
    std::snprintf(line, sizeof line,
                  "  %6llu %10.0f %10.0f %10.0f %10.0f\n",
                  static_cast<unsigned long long>(s), windows,
                  histogram_percentile(families, hist, 50.0),
                  histogram_percentile(families, hist, 95.0),
                  histogram_percentile(families, hist, 99.0));
    std::cout << line;
  }
}

/// Incident-forensics panel, shown once the flight recorder has seen a
/// trigger (verdict flip, /incidentz pull, CLI dump) or wrapped its
/// rings: trigger/bundle counts, events lost to wraparound, and the dump
/// latency tail.
void render_incident(const std::vector<OpenMetricsFamily>& families) {
  const double triggers =
      openmetrics_value(families, "incident_triggers_total");
  const double bundles =
      openmetrics_value(families, "incident_bundles_written_total");
  const double lost =
      openmetrics_value(families, "incident_events_dropped_total");
  if (triggers <= 0.0 && bundles <= 0.0 && lost <= 0.0) return;
  char line[160];
  std::cout << "\n  incident forensics:\n";
  std::snprintf(line, sizeof line, "  %-14s %12.0f   %-14s %12.0f\n",
                "triggers", triggers, "bundles", bundles);
  std::cout << line;
  std::snprintf(line, sizeof line, "  %-14s %12.0f   %-14s %10.0fus\n",
                "ring overwrites", lost, "dump p99",
                histogram_percentile(families, "incident_dump_us", 99.0));
  std::cout << line;
}

void render(const Options& opts, std::uint64_t tick,
            const std::vector<OpenMetricsFamily>& families,
            const std::string& folded, double iters_per_s,
            double windows_per_s) {
  if (opts.ansi) std::cout << "\033[2J\033[H";
  std::cout << "gansec_top — " << opts.host << ':' << opts.port << "  (tick "
            << tick << ", " << opts.interval_s << "s interval)\n\n";

  const double iterations =
      openmetrics_value(families, "gan_train_iterations_total");
  const double rss = openmetrics_value(families, "proc_rss_bytes");
  const double cpu = openmetrics_value(families, "proc_cpu_percent");
  const double threads = openmetrics_value(families, "proc_threads");
  const double alloc_rate =
      openmetrics_value(families, "proc_alloc_bytes_per_s");
  const double dropped =
      openmetrics_value(families, "obs_series_dropped_points_total");
  const double requests =
      openmetrics_value(families, "obs_http_requests_total");
  const double prof_samples =
      openmetrics_value(families, "prof_samples_total");

  char line[160];
  std::snprintf(line, sizeof line, "  %-14s %12.0f   %-14s %12.1f\n",
                "iterations", iterations, "iters/s", iters_per_s);
  std::cout << line;
  std::snprintf(line, sizeof line, "  %-14s %12.4f   %-14s %12.4f\n",
                "g_loss p50",
                histogram_percentile(families, "gan_train_g_loss", 50.0),
                "d_loss p50",
                histogram_percentile(families, "gan_train_d_loss", 50.0));
  std::cout << line;
  std::snprintf(line, sizeof line, "  %-14s %12s   %-14s %11.1f%%\n", "rss",
                human_bytes(rss).c_str(), "cpu", cpu);
  std::cout << line;
  std::snprintf(line, sizeof line, "  %-14s %12.0f   %-14s %10s/s\n",
                "threads", threads, "workspace", human_bytes(alloc_rate).c_str());
  std::cout << line;
  std::snprintf(line, sizeof line, "  %-14s %12.0f   %-14s %12.0f\n",
                "http requests", requests, "series dropped", dropped);
  std::cout << line;

  render_serve(families, windows_per_s);
  render_incident(families);

  const auto stacks = top_stacks(folded, 5);
  if (!stacks.empty()) {
    std::uint64_t total = 0;
    for (const auto& [stack, count] : stacks) total += count;
    (void)total;
    std::cout << "\n  hottest stacks (" << static_cast<std::uint64_t>(
                     prof_samples) << " samples):\n";
    for (const auto& [stack, count] : stacks) {
      const double pct = prof_samples > 0
                             ? 100.0 * static_cast<double>(count) /
                                   prof_samples
                             : 0.0;
      std::snprintf(line, sizeof line, "  %6.1f%%  %.120s\n", pct,
                    stack.c_str());
      std::cout << line;
    }
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_options(argc, argv, opts)) return usage();

  double prev_iterations = -1.0;
  double prev_scored = -1.0;
  std::uint64_t tick = 0;
  for (;;) {
    ++tick;
    try {
      const std::string metrics = http_get(opts.host, opts.port, "/metrics");
      const auto families = parse_openmetrics(metrics);
      std::string folded;
      try {
        folded = http_get(opts.host, opts.port, "/profilez");
      } catch (const gansec::Error&) {
        // Profiler not running (or endpoint racing shutdown): fine.
      }
      const double iterations =
          openmetrics_value(families, "gan_train_iterations_total");
      const double iters_per_s =
          prev_iterations >= 0.0 && opts.interval_s > 0.0
              ? (iterations - prev_iterations) / opts.interval_s
              : 0.0;
      prev_iterations = iterations;
      const double scored =
          openmetrics_value(families, "serve_windows_scored_total");
      const double windows_per_s =
          prev_scored >= 0.0 && opts.interval_s > 0.0
              ? (scored - prev_scored) / opts.interval_s
              : 0.0;
      prev_scored = scored;
      render(opts, tick, families, folded, iters_per_s, windows_per_s);
    } catch (const gansec::Error& e) {
      std::cerr << "gansec_top: " << e.what() << "\n";
      if (tick == 1) return 1;  // first poll failing = nothing to watch
    }
    if (opts.count != 0 && tick >= opts.count) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts.interval_s));
  }
  return 0;
}
