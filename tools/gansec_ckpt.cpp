// gansec_ckpt — inspect, verify and convert gansec.model.v1 checkpoints.
//
// Usage:
//   gansec_ckpt inspect <file.gsm>
//   gansec_ckpt verify [--json OUT] <file.gsm | registry-dir>...
//   gansec_ckpt convert <in> <out>
//
// `inspect` prints the header fields, provenance, attrs and the tensor
// directory of one checkpoint. `verify` validates every argument — a
// checkpoint file runs the full structural/CRC validation; a directory is
// treated as a ModelRegistry and every manifest entry is checked against
// its recorded size and CRC — and with --json writes a schema-versioned
// "gansec.ckpt.v1" artifact (same provenance + metric shape as bench/lint
// artifacts, so gansec_benchdiff --check validates and diffs it).
// `convert` re-encodes a CGAN model between the legacy text format and
// the binary checkpoint, chosen by the output extension (.gsm = binary).
//
// Exit codes: 0 = ok/clean, 1 = verification failures, 2 = usage/IO error.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gansec/error.hpp"
#include "gansec/gan/cgan.hpp"
#include "gansec/model/checkpoint.hpp"
#include "gansec/model/registry.hpp"
#include "gansec/model/serialize.hpp"
#include "gansec/obs/json.hpp"
#include "gansec/obs/report.hpp"

namespace {

namespace fs = std::filesystem;
using namespace gansec;

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr,
               "gansec_ckpt: %s\n"
               "usage: gansec_ckpt inspect <file.gsm>\n"
               "       gansec_ckpt verify [--json OUT] "
               "<file.gsm | registry-dir>...\n"
               "       gansec_ckpt convert <in> <out>\n",
               message);
  std::exit(2);
}

void print_json(const obs::JsonValue& value, int indent);

void print_json(const obs::JsonValue& value, int indent) {
  switch (value.kind()) {
    case obs::JsonValue::Kind::kNull:
      std::printf("null");
      break;
    case obs::JsonValue::Kind::kBool:
      std::printf("%s", value.as_bool() ? "true" : "false");
      break;
    case obs::JsonValue::Kind::kNumber:
      std::printf("%s", obs::json_number(value.as_number()).c_str());
      break;
    case obs::JsonValue::Kind::kString:
      std::printf("\"%s\"", value.as_string().c_str());
      break;
    case obs::JsonValue::Kind::kArray:
      std::printf("[%zu items]", value.as_array().size());
      break;
    case obs::JsonValue::Kind::kObject:
      std::printf("\n");
      for (const auto& [key, member] : value.as_object()) {
        std::printf("%*s%s: ", indent + 2, "", key.c_str());
        print_json(member, indent + 2);
        if (!member.is_object()) std::printf("\n");
      }
      break;
  }
}

int cmd_inspect(const std::string& path) {
  const model::CheckpointReader reader =
      model::CheckpointReader::from_file(path);
  std::printf("%s: %s v%u\n", path.c_str(), model::kCheckpointSchema,
              reader.version());
  std::printf("  kind:    %s\n", reader.kind().c_str());
  std::printf("  size:    %llu bytes (meta %llu, payload %llu)\n",
              static_cast<unsigned long long>(reader.file_bytes()),
              static_cast<unsigned long long>(reader.meta_bytes()),
              static_cast<unsigned long long>(reader.payload_bytes()));
  std::printf("  crc32:   %08x\n", reader.crc());
  if (const obs::JsonValue* prov = reader.provenance()) {
    std::printf("  provenance:");
    print_json(*prov, 2);
  }
  if (const obs::JsonValue* attrs = reader.attrs()) {
    std::printf("  attrs:");
    print_json(*attrs, 2);
  }
  std::printf("  tensors: %zu\n", reader.tensors().size());
  for (const model::TensorInfo& t : reader.tensors()) {
    std::printf("    %-24s %-4s %6llu x %-6llu @%-8llu %llu bytes\n",
                t.name.c_str(),
                std::string(model::dtype_name(t.dtype)).c_str(),
                static_cast<unsigned long long>(t.rows),
                static_cast<unsigned long long>(t.cols),
                static_cast<unsigned long long>(t.offset),
                static_cast<unsigned long long>(t.bytes));
  }
  return 0;
}

struct VerifyStats {
  std::size_t files = 0;
  std::size_t failures = 0;
  std::uint64_t bytes = 0;
};

void verify_file(const std::string& path, VerifyStats& stats) {
  ++stats.files;
  try {
    const model::CheckpointReader reader =
        model::CheckpointReader::from_file(path);
    stats.bytes += reader.file_bytes();
    std::printf("  ok    %s (%s, %llu bytes, crc %08x)\n", path.c_str(),
                reader.kind().c_str(),
                static_cast<unsigned long long>(reader.file_bytes()),
                reader.crc());
  } catch (const Error& e) {
    ++stats.failures;
    std::printf("  FAIL  %s: %s\n", path.c_str(), e.what());
  }
}

void verify_registry(const std::string& dir, VerifyStats& stats) {
  const model::ModelRegistry registry(dir);
  const auto entries = registry.entries();
  std::printf("registry %s: %zu entr%s\n", dir.c_str(), entries.size(),
              entries.size() == 1 ? "y" : "ies");
  for (const auto& entry : entries) {
    ++stats.files;
    const std::string path = (fs::path(dir) / entry.file).string();
    try {
      const model::CheckpointReader reader =
          model::CheckpointReader::from_file(path);
      if (reader.file_bytes() != entry.bytes ||
          reader.crc() != entry.crc32) {
        throw ParseError("checkpoint does not match its manifest record");
      }
      stats.bytes += reader.file_bytes();
      std::printf("  ok    %s (generation %llu, crc %08x)\n",
                  entry.file.c_str(),
                  static_cast<unsigned long long>(entry.generation),
                  reader.crc());
    } catch (const Error& e) {
      ++stats.failures;
      std::printf("  FAIL  %s: %s\n", entry.file.c_str(), e.what());
    }
  }
}

std::string artifact_json(const VerifyStats& stats, double wall_ms) {
  using obs::json_escape;
  using obs::json_number;
  const auto unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string json = "{\"schema\":\"gansec.ckpt.v1\"";
  json += ",\"name\":\"gansec_ckpt\"";
  json += ",\"created_unix_ms\":" + std::to_string(unix_ms);
  json += ",\"build\":" + obs::build_info_json(obs::build_info());
  const obs::HostInfo host = obs::host_info();
  json += ",\"host\":{\"hostname\":\"" + json_escape(host.hostname) +
          "\",\"os\":\"" + json_escape(host.os) +
          "\",\"hardware_concurrency\":" +
          std::to_string(host.hardware_concurrency) + '}';
  json += ",\"wall_ms\":" + json_number(wall_ms);
  json += ",\"metrics\":{";
  json += "\"ckpt.files\":{\"value\":" + std::to_string(stats.files) +
          ",\"direction\":\"two_sided\"}";
  json += ",\"ckpt.failures\":{\"value\":" + std::to_string(stats.failures) +
          ",\"direction\":\"lower_is_better\"}";
  json += ",\"ckpt.bytes\":{\"value\":" + std::to_string(stats.bytes) +
          ",\"direction\":\"two_sided\"}";
  json += "},\"checks\":{\"clean\":";
  json += stats.failures == 0 ? "true" : "false";
  json += "}}";
  std::string error;
  if (!obs::json_valid(json, &error)) {
    throw InvalidArgumentError("gansec_ckpt: artifact is not valid JSON: " +
                               error);
  }
  return json;
}

int cmd_verify(const std::vector<std::string>& paths,
               const std::string& json_path) {
  const auto start = std::chrono::steady_clock::now();
  VerifyStats stats;
  for (const std::string& path : paths) {
    if (fs::is_directory(path)) {
      verify_registry(path, stats);
    } else {
      verify_file(path, stats);
    }
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  std::printf("gansec_ckpt: %zu file(s), %zu failure(s)\n", stats.files,
              stats.failures);
  if (!json_path.empty()) {
    const fs::path out(json_path);
    if (out.has_parent_path()) fs::create_directories(out.parent_path());
    std::ofstream file(out);
    if (!file) throw IoError("gansec_ckpt: cannot write " + json_path);
    file << artifact_json(stats, wall_ms) << '\n';
  }
  return stats.failures == 0 ? 0 : 1;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  gan::Cgan loaded = [&] {
    std::ifstream is(in_path, std::ios::binary);
    char magic[sizeof(model::kCheckpointMagic)] = {};
    if (is.read(magic, sizeof(magic)) &&
        std::memcmp(magic, model::kCheckpointMagic, sizeof(magic)) == 0) {
      return model::load_cgan_checkpoint_file(in_path);
    }
    return gan::Cgan::load_file(in_path);
  }();
  const std::string ext = model::kCheckpointExtension;
  const bool binary =
      out_path.size() >= ext.size() &&
      out_path.compare(out_path.size() - ext.size(), ext.size(), ext) == 0;
  if (binary) {
    model::save_cgan_checkpoint(loaded, out_path);
  } else {
    loaded.save_file(out_path);
  }
  std::printf("%s -> %s (%s)\n", in_path.c_str(), out_path.c_str(),
              binary ? "gansec.model.v1" : "text");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_error("expected a subcommand");
  const std::string command = argv[1];
  std::string json_path;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--json") {
      if (i + 1 >= argc) usage_error("--json needs a file");
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help");
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown flag");
    } else {
      paths.push_back(arg);
    }
  }

  try {
    if (command == "inspect") {
      if (paths.size() != 1) usage_error("inspect takes exactly one file");
      return cmd_inspect(paths[0]);
    }
    if (command == "verify") {
      if (paths.empty()) usage_error("verify needs at least one path");
      return cmd_verify(paths, json_path);
    }
    if (command == "convert") {
      if (paths.size() != 2) usage_error("convert takes <in> <out>");
      return cmd_convert(paths[0], paths[1]);
    }
    usage_error("unknown subcommand");
  } catch (const Error& e) {
    std::fprintf(stderr, "gansec_ckpt: %s\n", e.what());
    return 2;
  }
}
