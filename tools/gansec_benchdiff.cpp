// gansec_benchdiff — the perf-regression gate over BENCH_*.json artifacts
// and run reports.
//
// Usage:
//   gansec_benchdiff [--threshold R] <baseline.json> <candidate.json>
//   gansec_benchdiff --check <artifact.json>
//
// Compares the named metrics of two artifacts produced by the same bench
// binary (schema "gansec.bench.v1"), two lint artifacts ("gansec.lint.v1",
// same metric shape as bench — file/violation/suppression counts), two
// lint call-graph databases ("gansec.lintdb.v1", emitted by gansec_lint
// --lintdb — function/edge/reachability counts), two
// checkpoint-verification artifacts ("gansec.ckpt.v1", emitted by
// gansec_ckpt verify, same metric shape), two run reports
// ("gansec.run_report.v1", whose scalar "results" entries are compared
// two-sided), or two incident bundles ("gansec.incident.v1", compared by
// event/drop counts; --check additionally validates trigger/provenance
// members and trace-clock event ordering). Each bench metric carries its
// own regression direction:
//
//   lower_is_better  — regression when candidate > baseline * (1 + R)
//   higher_is_better — regression when candidate < baseline * (1 - R)
//   two_sided        — regression when |candidate - baseline| exceeds
//                      R * max(|baseline|, epsilon)
//
// The default relative threshold R is 0.10; --threshold overrides it for
// every metric. Exit codes: 0 = no regression, 1 = at least one
// regression, 2 = usage/IO/schema error. Metrics present on only one side
// are reported as warnings, never regressions (bench sets legitimately
// evolve across commits).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "gansec/error.hpp"
#include "gansec/obs/json.hpp"

namespace {

using gansec::obs::JsonValue;

constexpr const char* kBenchSchema = "gansec.bench.v1";
constexpr const char* kLintSchema = "gansec.lint.v1";
constexpr const char* kLintDbSchema = "gansec.lintdb.v1";
constexpr const char* kCkptSchema = "gansec.ckpt.v1";
constexpr const char* kRunReportSchema = "gansec.run_report.v1";
constexpr const char* kIncidentSchema = "gansec.incident.v1";

struct Metric {
  std::string key;
  double value = 0.0;
  std::string direction;  // lower_is_better | higher_is_better | two_sided
};

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr,
               "gansec_benchdiff: %s\n"
               "usage: gansec_benchdiff [--threshold R] "
               "<baseline.json> <candidate.json>\n"
               "       gansec_benchdiff --check <artifact.json>\n",
               message);
  std::exit(2);
}

std::string schema_of(const JsonValue& root, const std::string& path) {
  if (!root.is_object()) {
    throw gansec::ParseError(path + ": artifact root is not a JSON object");
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw gansec::ParseError(path + ": missing string member \"schema\"");
  }
  return schema->as_string();
}

/// Extracts the comparable metrics of a validated artifact. Bench
/// artifacts contribute their "metrics" map; run reports contribute each
/// scalar "results" entry (two-sided) and per-phase wall clock
/// (informational only, so not extracted).
std::vector<Metric> extract_metrics(const JsonValue& root,
                                    const std::string& schema,
                                    const std::string& path) {
  std::vector<Metric> metrics;
  // Lint, lint-database and checkpoint-verification artifacts
  // deliberately share the bench metric shape so the same extraction
  // (and diffing) applies.
  if (schema == kBenchSchema || schema == kLintSchema ||
      schema == kLintDbSchema || schema == kCkptSchema) {
    const JsonValue* map = root.find("metrics");
    if (map == nullptr || !map->is_object()) {
      throw gansec::ParseError(path + ": missing object member \"metrics\"");
    }
    for (const auto& [key, entry] : map->as_object()) {
      if (!entry.is_object()) {
        throw gansec::ParseError(path + ": metric \"" + key +
                                 "\" is not an object");
      }
      const JsonValue* value = entry.find("value");
      const JsonValue* direction = entry.find("direction");
      if (value == nullptr || !value->is_number() || direction == nullptr ||
          !direction->is_string()) {
        throw gansec::ParseError(path + ": metric \"" + key +
                                 "\" needs a numeric \"value\" and a string "
                                 "\"direction\"");
      }
      const std::string dir = direction->as_string();
      if (dir != "lower_is_better" && dir != "higher_is_better" &&
          dir != "two_sided") {
        throw gansec::ParseError(path + ": metric \"" + key +
                                 "\" has unknown direction \"" + dir + '"');
      }
      metrics.push_back({key, value->as_number(), dir});
    }
    return metrics;
  }
  if (schema == kRunReportSchema) {
    const JsonValue* results = root.find("results");
    if (results == nullptr || !results->is_object()) {
      throw gansec::ParseError(path + ": missing object member \"results\"");
    }
    for (const auto& [key, entry] : results->as_object()) {
      if (entry.is_number()) {
        metrics.push_back({key, entry.as_number(), "two_sided"});
      }
    }
    return metrics;
  }
  if (schema == kIncidentSchema) {
    // Incident bundles are forensic, not perf artifacts: the comparable
    // facts are how much the black box captured and lost.
    const JsonValue* events = root.find("events");
    if (events == nullptr || !events->is_array()) {
      throw gansec::ParseError(path + ": missing array member \"events\"");
    }
    metrics.push_back({"events",
                       static_cast<double>(events->as_array().size()),
                       "two_sided"});
    const JsonValue* dropped = root.find("events_dropped");
    if (dropped != nullptr && dropped->is_number()) {
      metrics.push_back({"events_dropped", dropped->as_number(),
                         "two_sided"});
    }
    return metrics;
  }
  throw gansec::ParseError(path + ": unsupported schema \"" + schema +
                           "\" (expected " + kBenchSchema + ", " +
                           kLintSchema + ", " + kLintDbSchema + ", " +
                           kCkptSchema + ", " +
                           kRunReportSchema + " or " + kIncidentSchema +
                           ')');
}

/// Structural validation beyond extract_metrics: the provenance members
/// every artifact must carry so a diff can be traced back to a build.
void check_artifact(const JsonValue& root, const std::string& schema,
                    const std::string& path) {
  if (schema == kBenchSchema || schema == kLintSchema ||
      schema == kLintDbSchema || schema == kCkptSchema) {
    for (const char* member : {"name", "build", "host", "wall_ms"}) {
      if (root.find(member) == nullptr) {
        throw gansec::ParseError(path + ": missing member \"" +
                                 std::string(member) + '"');
      }
    }
    const JsonValue* sha = root.find_path({"build", "git_sha"});
    if (sha == nullptr || !sha->is_string()) {
      throw gansec::ParseError(path + ": missing build.git_sha");
    }
  } else if (schema == kRunReportSchema) {
    for (const char* member :
         {"command", "build", "host", "seeds", "phases", "config"}) {
      if (root.find(member) == nullptr) {
        throw gansec::ParseError(path + ": missing member \"" +
                                 std::string(member) + '"');
      }
    }
  } else if (schema == kIncidentSchema) {
    for (const char* member : {"trigger", "build", "events"}) {
      if (root.find(member) == nullptr) {
        throw gansec::ParseError(path + ": missing member \"" +
                                 std::string(member) + '"');
      }
    }
    const JsonValue* kind = root.find_path({"trigger", "kind"});
    if (kind == nullptr || !kind->is_string()) {
      throw gansec::ParseError(path + ": missing trigger.kind");
    }
    const JsonValue* sha = root.find_path({"build", "git_sha"});
    if (sha == nullptr || !sha->is_string()) {
      throw gansec::ParseError(path + ": missing build.git_sha");
    }
    // The timeline contract: events must be trace-clock ordered.
    const JsonValue* events = root.find("events");
    if (!events->is_array()) {
      throw gansec::ParseError(path + ": \"events\" is not an array");
    }
    double prev = -1.0;
    for (const JsonValue& ev : events->as_array()) {
      const JsonValue* ts = ev.find("ts_us");
      if (ts == nullptr || !ts->is_number()) {
        throw gansec::ParseError(path + ": event missing numeric ts_us");
      }
      if (ts->as_number() < prev) {
        throw gansec::ParseError(
            path + ": events are not trace-clock ordered");
      }
      prev = ts->as_number();
    }
  }
}

const Metric* find_metric(const std::vector<Metric>& metrics,
                          std::string_view key) {
  for (const Metric& m : metrics) {
    if (m.key == key) return &m;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::string check_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--threshold") {
      if (i + 1 >= argc) usage_error("--threshold needs a value");
      char* end = nullptr;
      threshold = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || !(threshold >= 0.0)) {
        usage_error("--threshold must be a non-negative number");
      }
    } else if (arg == "--check") {
      if (i + 1 >= argc) usage_error("--check needs a file");
      check_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help");
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown flag");
    } else {
      positional.emplace_back(arg);
    }
  }

  try {
    if (!check_path.empty()) {
      if (!positional.empty()) usage_error("--check takes no other files");
      const JsonValue root = gansec::obs::parse_json_file(check_path);
      const std::string schema = schema_of(root, check_path);
      check_artifact(root, schema, check_path);
      const auto metrics = extract_metrics(root, schema, check_path);
      std::printf("%s: valid %s artifact, %zu metric(s)\n",
                  check_path.c_str(), schema.c_str(), metrics.size());
      return 0;
    }

    if (positional.size() != 2) {
      usage_error("expected exactly two artifact files");
    }
    const std::string& base_path = positional[0];
    const std::string& cand_path = positional[1];
    const JsonValue base_root = gansec::obs::parse_json_file(base_path);
    const JsonValue cand_root = gansec::obs::parse_json_file(cand_path);
    const std::string base_schema = schema_of(base_root, base_path);
    const std::string cand_schema = schema_of(cand_root, cand_path);
    if (base_schema != cand_schema) {
      std::fprintf(stderr,
                   "gansec_benchdiff: schema mismatch: %s is %s but %s is "
                   "%s\n",
                   base_path.c_str(), base_schema.c_str(), cand_path.c_str(),
                   cand_schema.c_str());
      return 2;
    }
    const auto base = extract_metrics(base_root, base_schema, base_path);
    const auto cand = extract_metrics(cand_root, cand_schema, cand_path);

    std::printf("comparing %zu baseline metric(s) against %zu candidate "
                "metric(s), threshold %.1f%%\n",
                base.size(), cand.size(), threshold * 100.0);
    int regressions = 0;
    int compared = 0;
    for (const Metric& b : base) {
      const Metric* c = find_metric(cand, b.key);
      if (c == nullptr) {
        std::printf("  WARN  %s: missing from candidate\n", b.key.c_str());
        continue;
      }
      ++compared;
      // Relative change versus the baseline magnitude; an epsilon floor
      // keeps near-zero baselines (e.g. a 0.0 allocs/iter counter) from
      // turning measurement noise into infinite relative change.
      const double scale = std::max(std::abs(b.value), 1e-12);
      const double rel = (c->value - b.value) / scale;
      bool regressed = false;
      if (b.direction == "lower_is_better") {
        regressed = rel > threshold;
      } else if (b.direction == "higher_is_better") {
        regressed = rel < -threshold;
      } else {
        regressed = std::abs(rel) > threshold;
      }
      if (!std::isfinite(b.value) || !std::isfinite(c->value)) {
        regressed = b.value != c->value &&
                    !(std::isnan(b.value) && std::isnan(c->value));
      }
      std::printf("  %s %s: %.6g -> %.6g (%+.2f%%, %s)\n",
                  regressed ? "FAIL " : "ok   ", b.key.c_str(), b.value,
                  c->value, rel * 100.0, b.direction.c_str());
      if (regressed) ++regressions;
    }
    for (const Metric& c : cand) {
      if (find_metric(base, c.key) == nullptr) {
        std::printf("  WARN  %s: new in candidate (%.6g)\n", c.key.c_str(),
                    c.value);
      }
    }
    if (compared == 0) {
      std::fprintf(stderr,
                   "gansec_benchdiff: no overlapping metrics to compare\n");
      return 2;
    }
    if (regressions > 0) {
      std::printf("RESULT: %d regression(s) past the %.1f%% threshold\n",
                  regressions, threshold * 100.0);
      return 1;
    }
    std::printf("RESULT: no regressions\n");
    return 0;
  } catch (const gansec::Error& e) {
    std::fprintf(stderr, "gansec_benchdiff: %s\n", e.what());
    return 2;
  }
}
