// gansec — command-line front end for the GAN-Sec methodology.
//
// Subcommands:
//   graph                        print G_CPPS, Algorithm 1 pairs and DOT
//   train   --model out.cgan     build dataset, train CGAN, save model
//   analyze --model m.cgan       Algorithm 3 + confidentiality on test data
//   detect  --model m.cgan       calibrate + evaluate the attack detector
//
// Common training/dataset flags: --samples N (per condition), --bins N,
// --window S, --iterations N, --seed N, --h W (Parzen width).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "gansec/am/printer_arch.hpp"
#include "gansec/core/args.hpp"
#include "gansec/core/execution.hpp"
#include "gansec/core/pipeline.hpp"
#include "gansec/cpps/dot.hpp"
#include "gansec/error.hpp"
#include "gansec/security/detector.hpp"
#include "gansec/security/report.hpp"
#include "gansec/version.hpp"

namespace {

using namespace gansec;

const std::set<std::string> kFlags = {
    "model", "samples", "bins", "window", "iterations", "seed", "h",
    "scaler", "attack-fraction", "threads"};

core::PipelineConfig config_from(const core::Args& args) {
  core::PipelineConfig config;
  // 0 = auto (hardware concurrency); results are thread-count-invariant,
  // see the determinism contract in DESIGN.md "Parallel execution".
  const int threads = args.get_int("threads", 0);
  if (threads < 0) {
    throw InvalidArgumentError("--threads must be >= 0, got " +
                               std::to_string(threads));
  }
  config.execution.threads = static_cast<std::size_t>(threads);
  config.dataset.samples_per_condition =
      static_cast<std::size_t>(args.get_int("samples", 100));
  config.dataset.bins = static_cast<std::size_t>(args.get_int("bins", 100));
  config.dataset.window_s = args.get_double("window", 0.25);
  config.dataset.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2019));
  config.train.iterations =
      static_cast<std::size_t>(args.get_int("iterations", 1500));
  config.likelihood.parzen_h = args.get_double("h", 0.2);
  config.seed = config.dataset.seed;
  return config;
}

int cmd_graph() {
  const cpps::Architecture arch = am::make_printer_architecture();
  const cpps::CppsGraph graph(arch);
  const auto pairs = cpps::select_cross_domain_pairs(
      arch,
      cpps::generate_flow_pairs(graph, am::make_printer_historical_data()));
  std::cout << "architecture: " << arch.name() << " ("
            << arch.components().size() << " components, "
            << arch.flows().size() << " flows)\n";
  std::cout << "feedback flows removed:";
  for (const auto& f : graph.removed_feedback_flows()) std::cout << ' ' << f;
  std::cout << "\ncross-domain flow pairs:\n";
  for (const auto& p : pairs) {
    std::cout << "  Pr(" << p.second << " | " << p.first << ")\n";
  }
  std::cout << "\n" << cpps::to_dot(graph);
  return 0;
}

int cmd_train(const core::Args& args) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  const std::string scaler_path = args.get("scaler", model_path + ".scaler");
  core::GanSecPipeline pipeline(config_from(args));
  std::cerr << "training (this generates the dataset first)...\n";
  core::PipelineResult result = pipeline.run();
  result.model.save_file(model_path);
  {
    std::ofstream os(scaler_path);
    if (!os) throw IoError("cannot write scaler to " + scaler_path);
    pipeline.builder().scaler().save(os);
  }
  std::cout << "model written to " << model_path << "\n";
  std::cout << "scaler written to " << scaler_path << "\n";
  std::cout << "\ntraining summary (last iteration): g_loss="
            << result.history.back().g_loss
            << " d_loss=" << result.history.back().d_loss << "\n";
  std::cout << "\n"
            << security::format_likelihood_summary(result.likelihood);
  return 0;
}

int cmd_analyze(const core::Args& args) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  gan::Cgan model = gan::Cgan::load_file(model_path);
  core::PipelineConfig config = config_from(args);
  // analyze/detect run outside GanSecPipeline::run(), so install the
  // execution knobs (--threads) for the analyzers here.
  const core::ScopedExecution scoped(config.execution);
  config.dataset.bins = model.topology().data_dim;
  config.dataset.seed += 1;  // fresh test data, not the training draw
  am::DatasetBuilder builder(config.dataset);
  std::cerr << "generating held-out test data...\n";
  const am::LabeledDataset test = builder.build();

  security::LikelihoodConfig lik;
  lik.parzen_h = args.get_double("h", 0.2);
  const security::LikelihoodAnalyzer analyzer(lik);
  std::cout << security::format_likelihood_summary(
      analyzer.analyze(model, test));
  const security::ConfidentialityAnalyzer conf_analyzer;
  std::cout << "\n"
            << security::format_confidentiality(
                   conf_analyzer.analyze(model, test));
  return 0;
}

int cmd_detect(const core::Args& args) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  const std::string scaler_path = args.get("scaler", model_path + ".scaler");
  gan::Cgan model = gan::Cgan::load_file(model_path);
  core::PipelineConfig config = config_from(args);
  const core::ScopedExecution scoped(config.execution);
  config.dataset.bins = model.topology().data_dim;
  am::DatasetBuilder builder(config.dataset);
  // The detector must scale observations exactly as the training run did;
  // a refitted scaler shifts the features relative to the generator's
  // learned distribution. Load the scaler persisted by `train`, falling
  // back to refitting only when it is absent.
  if (std::ifstream scaler_in(scaler_path); scaler_in) {
    builder.restore_scaler(dsp::MinMaxScaler::load(scaler_in));
    std::cerr << "loaded scaler from " << scaler_path << "\n";
  } else {
    std::cerr << "warning: no scaler at " << scaler_path
              << "; refitting (detection quality may degrade)\n";
    builder.build();
  }

  security::AttackDetector detector(model, security::DetectorConfig{});
  security::AttackInjector injector(builder);
  detector.calibrate(
      injector.generate(25, 0.0, security::AttackKind::kNone));
  const double fraction = args.get_double("attack-fraction", 0.5);
  for (const auto kind : {security::AttackKind::kIntegrity,
                          security::AttackKind::kAvailability}) {
    std::cout << "\n" << security::attack_name(kind) << " attacks:\n"
              << security::format_detection(
                     detector.evaluate(injector.generate(20, fraction,
                                                         kind)));
  }
  return 0;
}

int usage() {
  std::cout << "gansec " << kVersionString
            << " — CGAN-based CPPS security analysis\n"
               "usage: gansec <graph|train|analyze|detect> [flags]\n"
               "  graph                     print G_CPPS + flow pairs + DOT\n"
               "  train   --model out.cgan  train and persist the CGAN\n"
               "  analyze --model m.cgan    Algorithm 3 + confidentiality\n"
               "  detect  --model m.cgan    attack-detection evaluation\n"
               "flags: --samples N  --bins N  --window S  --iterations N\n"
               "       --seed N  --h W  --scaler PATH  --attack-fraction F\n"
               "       --threads N  (0 = all cores; results are identical\n"
               "                     at any thread count)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const core::Args args(argc - 2, argv + 2, kFlags);
    if (command == "graph") return cmd_graph();
    if (command == "train") return cmd_train(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "detect") return cmd_detect(args);
    return usage();
  } catch (const gansec::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
