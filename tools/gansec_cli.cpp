// gansec — command-line front end for the GAN-Sec methodology.
//
// Subcommands:
//   graph                        print G_CPPS, Algorithm 1 pairs and DOT
//   train   --model out.cgan     build dataset, train CGAN, save model
//   analyze --model m.cgan       Algorithm 3 + confidentiality on test data
//   detect  --model m.cgan       calibrate + evaluate the attack detector
//   sweep                        one CGAN per Algorithm 1 flow pair
//
// Common training/dataset flags: --samples N (per condition), --bins N,
// --window S, --iterations N, --seed N, --h W (Parzen width).
//
// Observability flags (all commands): --log-level L, --log-json,
// --trace-out trace.json, --metrics-out metrics.json,
// --report-out run.json (schema-versioned run report; implies tracing),
// --progress S (one progress log line every S seconds). Logs go to
// stderr; result output stays on stdout, byte-identical at any thread
// count. An atexit + SIGINT/SIGTERM flusher writes the trace/metrics
// artifacts even when a run dies early.
//
// Live introspection flags: --expose PORT (OpenMetrics on 127.0.0.1 +
// /proc resource telemetry), --profile out.folded --profile-hz N
// (sampling CPU profiler; collapsed stacks + gansec.profile.v1 JSON).
// See DESIGN.md "Live introspection".
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gansec/am/printer_arch.hpp"
#include "gansec/core/args.hpp"
#include "gansec/core/execution.hpp"
#include "gansec/core/pipeline.hpp"
#include "gansec/cpps/dot.hpp"
#include "gansec/error.hpp"
#include "gansec/model/checkpoint.hpp"
#include "gansec/model/registry.hpp"
#include "gansec/model/serialize.hpp"
#include "gansec/obs/http.hpp"
#include "gansec/obs/incident.hpp"
#include "gansec/obs/log.hpp"
#include "gansec/obs/metrics.hpp"
#include "gansec/obs/proc_stats.hpp"
#include "gansec/obs/prof.hpp"
#include "gansec/obs/report.hpp"
#include "gansec/obs/trace.hpp"
#include "gansec/math/stats.hpp"
#include "gansec/security/detector.hpp"
#include "gansec/security/report.hpp"
#include "gansec/security/stream_detector.hpp"
#include "gansec/serve/loadgen.hpp"
#include "gansec/serve/service.hpp"
#include "gansec/version.hpp"

namespace {

using namespace gansec;

const std::set<std::string> kFlags = {
    "model", "registry", "samples", "bins", "window", "iterations", "seed",
    "h", "scaler", "attack-fraction", "threads", "log-level", "trace-out",
    "metrics-out", "report-out", "progress", "expose", "profile",
    "profile-hz", "streams", "windows", "workers", "ring", "rate",
    "attack-kind", "availability-floor", "calibrate", "swap-registry",
    "swap-interval", "incident-out"};

const std::set<std::string> kBoolFlags = {"log-json", "incident-dump"};

core::PipelineConfig config_from(const core::Args& args);

// Installs the observability knobs before the command runs. The log level
// flag overrides GANSEC_LOG_LEVEL only when present, so the env default
// still works for flagless runs. --report-out implies tracing (phase
// wall-clock comes from the span recorder). When any artifact path is
// given, an atexit + SIGINT/SIGTERM flusher is armed so a run that dies
// early still leaves its trace/metrics files behind.
void apply_observability(const core::Args& args) {
  if (args.has("log-level")) {
    obs::set_log_level(obs::parse_log_level(args.get("log-level", "info")));
  }
  if (args.get_bool("log-json", false)) {
    obs::set_log_sink(std::make_shared<obs::JsonLinesSink>(std::clog));
  }
  if (args.has("trace-out") || args.has("report-out")) {
    obs::set_tracing(true);
  }
  const std::string trace_path = args.get("trace-out", "");
  const std::string metrics_path = args.get("metrics-out", "");
  if (!trace_path.empty() || !metrics_path.empty()) {
    obs::register_artifact_flush({trace_path, metrics_path});
  }
  // The flight recorder is always on; arm the crash-dump side of it so a
  // fatal fault leaves a black-box bundle behind. --incident-out "" opts
  // out; --incident-out PATH moves it.
  const std::string incident_path =
      args.get("incident-out", "gansec-incident.json");
  if (!incident_path.empty()) {
    obs::incident::arm(incident_path);
    obs::register_fatal_signal_dump();
  }
}

// Writes the trace / metrics artifacts after the command finishes. The
// flush claim comes FIRST: whoever wins the atomic claim (this normal
// path, atexit, or a signal handler) is the only writer, so a SIGINT
// landing mid-write here can no longer produce a second flush on the
// way out (and vice versa).
void finish_observability(const core::Args& args) {
  if (args.get_bool("incident-dump", false)) {
    const std::string path =
        obs::incident::write_bundle("cli", "--incident-dump");
    GANSEC_LOG_INFO("incident.written", {"path", path});
  }
  const std::string trace_path = args.get("trace-out", "");
  const std::string metrics_path = args.get("metrics-out", "");
  if (trace_path.empty() && metrics_path.empty()) return;
  if (!obs::claim_artifact_flush()) return;  // a signal path already wrote
  if (!trace_path.empty()) {
    obs::write_chrome_trace_file(trace_path);
    GANSEC_LOG_INFO("trace.written", {"path", trace_path},
                    {"events", obs::trace_events().size()});
  }
  if (!metrics_path.empty()) {
    obs::write_metrics_json_file(metrics_path);
    GANSEC_LOG_INFO("metrics.written", {"path", metrics_path});
  }
}

// Live introspection (--expose / --profile / --profile-hz): the metrics
// server and resource sampler run for the whole command; the profiler is
// stopped and its artifacts written in finish().
struct LiveIntrospection {
  std::unique_ptr<obs::MetricsServer> server;
  std::unique_ptr<obs::ResourceSampler> sampler;
  std::string profile_path;

  void start(const core::Args& args) {
    if (args.has("expose")) {
      obs::MetricsServer::Config config;
      config.port = static_cast<std::uint16_t>(args.get_int("expose", 0));
      server = std::make_unique<obs::MetricsServer>(config);
      GANSEC_LOG_INFO("obs.expose.listening",
                      {"address", config.bind_address},
                      {"port", static_cast<unsigned>(server->port())});
      sampler = std::make_unique<obs::ResourceSampler>(
          obs::ResourceSampler::Config{});
      sampler->start();
    }
    profile_path = args.get("profile", "");
    if (!profile_path.empty()) {
      obs::prof::ProfileConfig config;
      config.hz = args.get_double("profile-hz", 99.0);
      obs::prof::SamplingProfiler::instance().start(config);
      GANSEC_LOG_INFO("prof.started", {"hz", config.hz},
                      {"out", profile_path});
    }
  }

  void finish() {
    auto& profiler = obs::prof::SamplingProfiler::instance();
    if (!profile_path.empty() && profiler.running()) {
      const obs::prof::ProfileReport report = profiler.stop();
      obs::prof::write_profile_files(report, profile_path,
                                     profile_path + ".json");
      GANSEC_LOG_INFO("prof.written", {"path", profile_path},
                      {"samples", report.samples},
                      {"symbolized_fraction", report.symbolized_fraction});
      profile_path.clear();
    }
    if (sampler != nullptr) {
      sampler->stop();
      sampler.reset();
    }
    server.reset();
  }
};

// Echoes the shared dataset/training flags into the report; commands with
// a pipeline instead call GanSecPipeline::describe() for the full set.
void describe_common_config(const core::Args& args, obs::RunReport& report) {
  const core::PipelineConfig config = config_from(args);
  report.add_config("samples_per_condition",
                    static_cast<std::uint64_t>(
                        config.dataset.samples_per_condition));
  report.add_config("bins",
                    static_cast<std::uint64_t>(config.dataset.bins));
  report.add_config("window_s", config.dataset.window_s);
  report.add_config("parzen_h", config.likelihood.parzen_h);
  report.add_seed("dataset", config.dataset.seed);
}

// True when `path` holds a gansec.model.v1 binary checkpoint (sniffs the
// 8-byte magic), false for the legacy text format or anything else.
bool is_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  char magic[sizeof(model::kCheckpointMagic)] = {};
  if (!is.read(magic, sizeof(magic))) return false;
  return std::memcmp(magic, model::kCheckpointMagic, sizeof(magic)) == 0;
}

// Loads a model from either format: binary checkpoints are detected by
// magic, everything else goes through the legacy text loader.
gan::Cgan load_model(const std::string& path) {
  if (is_checkpoint_file(path)) {
    return model::load_cgan_checkpoint_file(path);
  }
  return gan::Cgan::load_file(path);
}

// Saves in the format the filename asks for: `.gsm` selects the binary
// gansec.model.v1 checkpoint, anything else the legacy text format.
void save_model(const gan::Cgan& m, const std::string& path) {
  const std::string ext = model::kCheckpointExtension;
  if (path.size() >= ext.size() &&
      path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
    model::save_cgan_checkpoint(m, path);
  } else {
    m.save_file(path);
  }
}

core::PipelineConfig config_from(const core::Args& args) {
  core::PipelineConfig config;
  // 0 = auto (hardware concurrency); results are thread-count-invariant,
  // see the determinism contract in DESIGN.md "Parallel execution".
  const int threads = args.get_int("threads", 0);
  if (threads < 0) {
    throw InvalidArgumentError("--threads must be >= 0, got " +
                               std::to_string(threads));
  }
  config.execution.threads = static_cast<std::size_t>(threads);
  config.dataset.samples_per_condition =
      static_cast<std::size_t>(args.get_int("samples", 100));
  config.dataset.bins = static_cast<std::size_t>(args.get_int("bins", 100));
  config.dataset.window_s = args.get_double("window", 0.25);
  config.dataset.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2019));
  config.train.iterations =
      static_cast<std::size_t>(args.get_int("iterations", 1500));
  config.likelihood.parzen_h = args.get_double("h", 0.2);
  config.seed = config.dataset.seed;
  return config;
}

int cmd_graph(obs::RunReport* report) {
  const cpps::Architecture arch = am::make_printer_architecture();
  const cpps::CppsGraph graph(arch);
  const auto pairs = cpps::select_cross_domain_pairs(
      arch,
      cpps::generate_flow_pairs(graph, am::make_printer_historical_data()));
  if (report != nullptr) {
    report->add_result("components",
                       static_cast<double>(arch.components().size()));
    report->add_result("flows", static_cast<double>(arch.flows().size()));
    report->add_result("cross_domain_pairs",
                       static_cast<double>(pairs.size()));
  }
  std::cout << "architecture: " << arch.name() << " ("
            << arch.components().size() << " components, "
            << arch.flows().size() << " flows)\n";
  std::cout << "feedback flows removed:";
  for (const auto& f : graph.removed_feedback_flows()) std::cout << ' ' << f;
  std::cout << "\ncross-domain flow pairs:\n";
  for (const auto& p : pairs) {
    std::cout << "  Pr(" << p.second << " | " << p.first << ")\n";
  }
  std::cout << "\n" << cpps::to_dot(graph);
  return 0;
}

int cmd_train(const core::Args& args, obs::RunReport* report) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  const std::string scaler_path = args.get("scaler", model_path + ".scaler");
  core::GanSecPipeline pipeline(config_from(args));
  GANSEC_LOG_INFO("cli.train.start", {"model", model_path},
                  {"note", "dataset is generated first"});
  core::PipelineResult result = pipeline.run();
  if (report != nullptr) {
    pipeline.describe(*report);
    report->add_config("model", model_path);
    report->add_result("g_loss_final", result.history.back().g_loss);
    report->add_result("d_loss_final", result.history.back().d_loss);
    report->add_result_json("likelihood",
                            security::likelihood_to_json(result.likelihood));
    report->add_result("attacker_accuracy",
                       result.confidentiality.attacker_accuracy);
  }
  save_model(result.model, model_path);
  {
    std::ofstream os(scaler_path);
    if (!os) throw IoError("cannot write scaler to " + scaler_path);
    pipeline.builder().scaler().save(os);
  }
  std::cout << "model written to " << model_path << "\n";
  std::cout << "scaler written to " << scaler_path << "\n";
  std::cout << "\ntraining summary (last iteration): g_loss="
            << result.history.back().g_loss
            << " d_loss=" << result.history.back().d_loss << "\n";
  std::cout << "\n"
            << security::format_likelihood_summary(result.likelihood);
  return 0;
}

int cmd_analyze(const core::Args& args, obs::RunReport* report) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  gan::Cgan model = load_model(model_path);
  core::PipelineConfig config = config_from(args);
  // analyze/detect run outside GanSecPipeline::run(), so install the
  // execution knobs (--threads) for the analyzers here.
  const core::ScopedExecution scoped(config.execution);
  config.dataset.bins = model.topology().data_dim;
  config.dataset.seed += 1;  // fresh test data, not the training draw
  am::DatasetBuilder builder(config.dataset);
  GANSEC_LOG_INFO("cli.analyze.start", {"model", model_path},
                  {"note", "generating held-out test data"});
  const am::LabeledDataset test = builder.build();

  security::LikelihoodConfig lik;
  lik.parzen_h = args.get_double("h", 0.2);
  const security::LikelihoodAnalyzer analyzer(lik);
  const security::LikelihoodResult likelihood = analyzer.analyze(model, test);
  std::cout << security::format_likelihood_summary(likelihood);
  const security::ConfidentialityAnalyzer conf_analyzer;
  const security::ConfidentialityReport conf =
      conf_analyzer.analyze(model, test);
  std::cout << "\n" << security::format_confidentiality(conf);
  if (report != nullptr) {
    describe_common_config(args, *report);
    report->add_config("model", model_path);
    report->add_result_json("likelihood",
                            security::likelihood_to_json(likelihood));
    report->add_result("attacker_accuracy", conf.attacker_accuracy);
    report->add_result("mean_mi", conf.mean_mi);
    report->add_result("max_mi", conf.max_mi);
  }
  return 0;
}

int cmd_detect(const core::Args& args, obs::RunReport* report) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  const std::string scaler_path = args.get("scaler", model_path + ".scaler");
  gan::Cgan model = load_model(model_path);
  core::PipelineConfig config = config_from(args);
  const core::ScopedExecution scoped(config.execution);
  config.dataset.bins = model.topology().data_dim;
  am::DatasetBuilder builder(config.dataset);
  // The detector must scale observations exactly as the training run did;
  // a refitted scaler shifts the features relative to the generator's
  // learned distribution. Load the scaler persisted by `train`, falling
  // back to refitting only when it is absent.
  if (std::ifstream scaler_in(scaler_path); scaler_in) {
    builder.restore_scaler(dsp::MinMaxScaler::load(scaler_in));
    GANSEC_LOG_INFO("cli.detect.scaler_loaded", {"path", scaler_path});
  } else {
    GANSEC_LOG_WARN("cli.detect.scaler_missing", {"path", scaler_path},
                    {"note", "refitting; detection quality may degrade"});
    builder.build();
  }

  security::AttackDetector detector(model, security::DetectorConfig{});
  security::AttackInjector injector(builder);
  detector.calibrate(
      injector.generate(25, 0.0, security::AttackKind::kNone));
  const double fraction = args.get_double("attack-fraction", 0.5);
  if (report != nullptr) {
    describe_common_config(args, *report);
    report->add_config("model", model_path);
    report->add_config("attack_fraction", fraction);
  }
  for (const auto kind : {security::AttackKind::kIntegrity,
                          security::AttackKind::kAvailability}) {
    const security::DetectionReport detection =
        detector.evaluate(injector.generate(20, fraction, kind));
    std::cout << "\n" << security::attack_name(kind) << " attacks:\n"
              << security::format_detection(detection);
    if (report != nullptr) {
      const std::string prefix =
          std::string("detect.") + security::attack_name(kind);
      report->add_result(prefix + ".accuracy", detection.accuracy);
      report->add_result(prefix + ".auc", detection.auc);
      report->add_result(prefix + ".tpr", detection.true_positive_rate);
      report->add_result(prefix + ".fpr", detection.false_positive_rate);
    }
  }
  return 0;
}

security::AttackKind parse_attack_kind(const std::string& name) {
  if (name == "integrity") return security::AttackKind::kIntegrity;
  if (name == "availability") return security::AttackKind::kAvailability;
  throw InvalidArgumentError(
      "--attack-kind must be integrity or availability, got " + name);
}

serve::LoadGenConfig loadgen_config_from(const core::Args& args,
                                         std::uint64_t seed) {
  serve::LoadGenConfig lg;
  lg.streams = static_cast<std::size_t>(args.get_int("streams", 4));
  lg.windows_per_stream =
      static_cast<std::size_t>(args.get_int("windows", 32));
  lg.rate_per_stream = args.get_double("rate", 0.0);
  lg.attack_fraction = args.get_double("attack-fraction", 0.0);
  lg.attack_kind = parse_attack_kind(args.get("attack-kind", "integrity"));
  lg.seed = seed;
  if (lg.streams == 0 || lg.windows_per_stream == 0) {
    throw InvalidArgumentError(
        "--streams and --windows must both be positive");
  }
  return lg;
}

// `gansec loadgen`: synthesize the serve traffic without scoring it —
// prints one deterministic FNV-1a fingerprint per stream (byte-identical
// across runs and machines for the same flags) plus the synthesis rate.
int cmd_loadgen(const core::Args& args, obs::RunReport* report) {
  core::PipelineConfig config = config_from(args);
  am::DatasetBuilder builder(config.dataset);
  const serve::LoadGenConfig lg =
      loadgen_config_from(args, config.dataset.seed);
  std::cout << "loadgen: " << lg.streams << " streams x "
            << lg.windows_per_stream << " windows ("
            << serve::window_sample_count(config.dataset)
            << " samples/window, attack_fraction=" << lg.attack_fraction
            << ")\n";
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t attacks = 0;
  for (std::size_t s = 0; s < lg.streams; ++s) {
    serve::StreamSource source(builder, lg, s);
    const std::uint64_t checksum =
        serve::stream_checksum(source, lg.windows_per_stream);
    attacks += source.attacks_injected();
    std::printf("stream %3zu  fnv1a=%016llx  attacks=%llu\n", s,
                static_cast<unsigned long long>(checksum),
                static_cast<unsigned long long>(source.attacks_injected()));
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto total = lg.streams * lg.windows_per_stream;
  GANSEC_LOG_INFO("cli.loadgen.done", {"windows", total},
                  {"wall_s", wall_s},
                  {"windows_per_s",
                   wall_s > 0.0 ? static_cast<double>(total) / wall_s : 0.0});
  if (report != nullptr) {
    describe_common_config(args, *report);
    report->add_result("windows", static_cast<double>(total));
    report->add_result("attacks_injected", static_cast<double>(attacks));
    report->add_result("synthesis_windows_per_s",
                       wall_s > 0.0 ? static_cast<double>(total) / wall_s
                                    : 0.0);
  }
  return 0;
}

// `gansec serve`: the online monitor. N synthetic printers push acoustic
// windows into per-stream rings; a sharded worker pool scores each window
// through the shared ScoringModel and emits integrity / availability
// verdicts. --rate R paces each stream at R windows/s with drop-oldest
// backpressure; --rate 0 runs lossless at full speed. --swap-registry DIR
// polls a ModelRegistry and hot-swaps the newest generation in between
// windows.
int cmd_serve(const core::Args& args, obs::RunReport* report) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  const std::string scaler_path = args.get("scaler", model_path + ".scaler");
  gan::Cgan model = load_model(model_path);
  core::PipelineConfig config = config_from(args);
  const core::ScopedExecution scoped(config.execution);
  config.dataset.bins = model.topology().data_dim;
  am::DatasetBuilder builder(config.dataset);
  if (std::ifstream scaler_in(scaler_path); scaler_in) {
    builder.restore_scaler(dsp::MinMaxScaler::load(scaler_in));
    GANSEC_LOG_INFO("cli.serve.scaler_loaded", {"path", scaler_path});
  } else {
    GANSEC_LOG_WARN("cli.serve.scaler_missing", {"path", scaler_path},
                    {"note", "refitting; detection quality may degrade"});
    builder.build();
  }

  // The shared immutable scoring model — the very same estimators the
  // batch AttackDetector would build (same sampling sequence).
  security::DetectorConfig detector_config;
  auto scoring = std::make_shared<const security::ScoringModel>(
      model, detector_config);

  // Calibrate the alarm threshold on benign injector windows, exactly as
  // `detect` does.
  const auto calibrate_n =
      static_cast<std::size_t>(args.get_int("calibrate", 25));
  security::AttackInjector injector(builder);
  std::vector<double> benign_scores;
  for (const auto& obs :
       injector.generate(calibrate_n, 0.0, security::AttackKind::kNone)) {
    benign_scores.push_back(
        scoring->score_row(obs.features, obs.expected_label));
  }
  security::StreamDetectorConfig detector;
  detector.threshold = math::percentile(
      std::move(benign_scores), detector_config.false_alarm_percentile);
  detector.availability_floor = args.get_double("availability-floor", 0.05);

  const serve::LoadGenConfig lg =
      loadgen_config_from(args, config.dataset.seed);
  serve::DetectorService::Config service_config;
  service_config.streams = lg.streams;
  const auto workers = static_cast<std::size_t>(args.get_int("workers", 0));
  service_config.workers =
      workers > 0 ? workers
                  : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  service_config.ring_capacity =
      static_cast<std::size_t>(args.get_int("ring", 64));
  service_config.window_length = serve::window_sample_count(config.dataset);
  service_config.detector = detector;
  service_config.keep_results = true;
  service_config.expected_windows = lg.windows_per_stream;

  serve::DetectorService service(scoring, builder, service_config);

  // Optional hot-swap loop: poll the registry; whenever a newer generation
  // appears, rebuild the scoring model from it and install it live.
  std::atomic<bool> poll_stop{false};
  std::thread poller;
  if (args.has("swap-registry")) {
    const std::string dir = args.get("swap-registry", "");
    const double interval_s = args.get_double("swap-interval", 1.0);
    poller = std::thread([&service, &poll_stop, dir, interval_s,
                          detector_config] {
      std::uint64_t seen = 0;
      while (!poll_stop.load(std::memory_order_acquire)) {
        try {
          model::ModelRegistry registry(dir);
          std::uint64_t newest = 0;
          cpps::FlowPair pair;
          for (const auto& entry : registry.entries()) {
            if (entry.generation >= newest) {
              newest = entry.generation;
              pair = entry.pair;
            }
          }
          if (newest > seen) {
            gan::Cgan swapped = registry.load_latest(pair);
            service.install_model(
                std::make_shared<const security::ScoringModel>(
                    swapped, detector_config));
            seen = newest;
          }
        } catch (const gansec::Error& e) {
          GANSEC_LOG_WARN("cli.serve.swap_failed", {"what", e.what()});
        }
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(interval_s));
        while (!poll_stop.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < until) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
  }

  std::cout << "online monitor: " << lg.streams << " streams x "
            << lg.windows_per_stream << " windows, "
            << service_config.workers << " workers, ring "
            << service_config.ring_capacity << ", "
            << (lg.rate_per_stream > 0.0
                    ? std::to_string(lg.rate_per_stream) + " windows/s"
                    : std::string("full rate (lossless)"))
            << "\nthreshold=" << detector.threshold
            << " availability_floor=" << detector.availability_floor << "\n";

  service.start();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> injected(lg.streams, 0);
  std::vector<std::thread> producers;
  producers.reserve(lg.streams);
  for (std::size_t s = 0; s < lg.streams; ++s) {
    producers.emplace_back([&service, &builder, &lg, &injected, s] {
      try {
        serve::StreamSource source(builder, lg, s);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t j = 0; j < lg.windows_per_stream; ++j) {
          if (lg.rate_per_stream > 0.0) {
            std::this_thread::sleep_until(
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(j) /
                                lg.rate_per_stream)));
          }
          serve::StreamSource::Window w =
              source.next(service.acquire_buffer(s));
          if (lg.rate_per_stream > 0.0) {
            service.push(s, w.expected_label, std::move(w.samples));
          } else {
            service.push_blocking(s, w.expected_label,
                                  std::move(w.samples));
          }
        }
        injected[s] = source.attacks_injected();
      } catch (const gansec::Error& e) {
        GANSEC_LOG_ERROR("cli.serve.producer_failed", {"stream", s},
                         {"what", e.what()});
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.stop();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  poll_stop.store(true, std::memory_order_release);
  if (poller.joinable()) poller.join();

  std::printf(
      "\nstream   scored  dropped   benign    integ    avail injected  "
      "p50_us    p95_us    p99_us\n");
  std::uint64_t scored = 0;
  std::uint64_t dropped = 0;
  std::uint64_t alarms = 0;
  for (std::size_t s = 0; s < lg.streams; ++s) {
    const serve::StreamTotals totals = service.totals(s);
    scored += totals.scored;
    dropped += totals.dropped;
    alarms += totals.integrity + totals.availability;
    std::vector<double> latencies;
    latencies.reserve(service.results(s).size());
    for (const serve::WindowResult& r : service.results(s)) {
      latencies.push_back(r.latency_us);
    }
    const double p50 =
        latencies.empty() ? 0.0 : math::percentile(latencies, 50.0);
    const double p95 =
        latencies.empty() ? 0.0 : math::percentile(latencies, 95.0);
    const double p99 =
        latencies.empty() ? 0.0 : math::percentile(latencies, 99.0);
    std::printf(
        "%6zu %8llu %8llu %8llu %8llu %8llu %8llu %9.0f %9.0f %9.0f\n", s,
        static_cast<unsigned long long>(totals.scored),
        static_cast<unsigned long long>(totals.dropped),
        static_cast<unsigned long long>(totals.benign),
        static_cast<unsigned long long>(totals.integrity),
        static_cast<unsigned long long>(totals.availability),
        static_cast<unsigned long long>(injected[s]), p50, p95, p99);
  }
  const double windows_per_s =
      wall_s > 0.0 ? static_cast<double>(scored) / wall_s : 0.0;
  std::printf("total: %llu scored, %llu dropped, %.1f windows/s, %llu "
              "alarms, %llu model swaps\n",
              static_cast<unsigned long long>(scored),
              static_cast<unsigned long long>(dropped), windows_per_s,
              static_cast<unsigned long long>(alarms),
              static_cast<unsigned long long>(service.model_generation()));

  if (report != nullptr) {
    describe_common_config(args, *report);
    report->add_config("model", model_path);
    report->add_config("streams", static_cast<std::uint64_t>(lg.streams));
    report->add_config("workers",
                       static_cast<std::uint64_t>(service_config.workers));
    report->add_result("threshold", detector.threshold);
    report->add_result("windows_scored", static_cast<double>(scored));
    report->add_result("windows_dropped", static_cast<double>(dropped));
    report->add_result("windows_per_s", windows_per_s);
    report->add_result("alarms", static_cast<double>(alarms));
    report->add_result("model_swaps",
                       static_cast<double>(service.model_generation()));
  }
  return 0;
}

int cmd_sweep(const core::Args& args, obs::RunReport* report) {
  core::GanSecPipeline pipeline(config_from(args));
  const core::FlowPairSweep sweep = pipeline.run_flow_pairs();
  if (args.has("registry")) {
    model::ModelRegistry registry(args.get("registry", ""));
    const auto entries = core::GanSecPipeline::save_sweep(sweep, registry);
    for (const auto& e : entries) {
      std::cout << "stored " << e.file << " (generation " << e.generation
                << ")\n";
    }
    GANSEC_LOG_INFO("cli.sweep.registry",
                    {"dir", registry.directory().string()},
                    {"models", entries.size()});
  }
  if (report != nullptr) {
    pipeline.describe(*report);
    report->add_result("pairs",
                       static_cast<double>(sweep.outcomes.size()));
    report->add_result("most_leaky_pair",
                       static_cast<double>(sweep.most_leaky_pair()));
    for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
      const security::LikelihoodResult& lik = sweep.outcomes[i].likelihood;
      double margin = 0.0;
      for (std::size_t c = 0; c < lik.condition_count(); ++c) {
        margin += lik.mean_correct(c) - lik.mean_incorrect(c);
      }
      margin /= static_cast<double>(lik.condition_count());
      report->add_result("pair." + std::to_string(i) + ".margin", margin);
    }
  }
  std::cout << "flow-pair sweep: " << sweep.outcomes.size()
            << " cross-domain pairs, one CGAN each\n";
  std::cout << "pair  margin      Pr(F_j | F_i)\n";
  for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
    const core::FlowPairOutcome& out = sweep.outcomes[i];
    const security::LikelihoodResult& lik = out.likelihood;
    double margin = 0.0;
    for (std::size_t c = 0; c < lik.condition_count(); ++c) {
      margin += lik.mean_correct(c) - lik.mean_incorrect(c);
    }
    margin /= static_cast<double>(lik.condition_count());
    std::printf("%4zu  %+.6f   Pr(%s | %s)\n", i, margin,
                out.pair.second.c_str(), out.pair.first.c_str());
  }
  const std::size_t leaky = sweep.most_leaky_pair();
  std::cout << "most leaky pair: #" << leaky << " Pr("
            << sweep.outcomes[leaky].pair.second << " | "
            << sweep.outcomes[leaky].pair.first << ")\n";
  return 0;
}

int usage() {
  std::cout << "gansec " << kVersionString
            << " — CGAN-based CPPS security analysis\n"
               "usage: gansec "
               "<graph|train|analyze|detect|sweep|serve|loadgen> [flags]\n"
               "  graph                     print G_CPPS + flow pairs + DOT\n"
               "  train   --model out.cgan  train and persist the CGAN\n"
               "  analyze --model m.cgan    Algorithm 3 + confidentiality\n"
               "  detect  --model m.cgan    attack-detection evaluation\n"
               "  sweep                     one CGAN per Algorithm 1 pair,\n"
               "                            leakage margin table\n"
               "  serve   --model m.cgan    streaming online monitor: N\n"
               "                            synthetic printers scored live\n"
               "  loadgen                   synth-only traffic generator,\n"
               "                            prints per-stream fingerprints\n"
               "model files: *.gsm selects the gansec.model.v1 binary\n"
               "  checkpoint; other extensions use the legacy text format.\n"
               "  analyze/detect auto-detect the format by magic.\n"
               "  sweep --registry DIR      store every pair's model in a\n"
               "                            versioned ModelRegistry\n"
               "flags: --samples N  --bins N  --window S  --iterations N\n"
               "       --seed N  --h W  --scaler PATH  --attack-fraction F\n"
               "       --threads N  (0 = all cores; results are identical\n"
               "                     at any thread count)\n"
               "streaming (serve / loadgen):\n"
               "       --streams N  --windows M  --workers K  --ring C\n"
               "       --rate R                  windows/s per stream with\n"
               "                                 drop-oldest backpressure\n"
               "                                 (0 = lossless full rate)\n"
               "       --attack-kind integrity|availability\n"
               "       --availability-floor F  --calibrate N\n"
               "       --swap-registry DIR --swap-interval S   poll a model\n"
               "                                 registry and hot-swap the\n"
               "                                 newest generation live\n"
               "observability:\n"
               "       --log-level trace|debug|info|warn|error|off\n"
               "       --log-json                JSON-lines logs on stderr\n"
               "       --trace-out trace.json    chrome://tracing spans\n"
               "       --metrics-out m.json      metrics registry snapshot\n"
               "       --report-out run.json     schema-versioned run report\n"
               "                                 (seeds, config, git SHA,\n"
               "                                 phase times, percentiles)\n"
               "       --progress S              progress log line every S\n"
               "                                 seconds during training\n"
               "live introspection:\n"
               "       --expose PORT             serve OpenMetrics on\n"
               "                                 127.0.0.1:PORT (/metrics,\n"
               "                                 /healthz, /profilez; 0 =\n"
               "                                 ephemeral) + /proc telemetry\n"
               "       --profile out.folded      sampling CPU profiler;\n"
               "                                 writes flamegraph.pl input\n"
               "                                 and out.folded.json\n"
               "                                 (gansec.profile.v1)\n"
               "       --profile-hz N            sampling rate (default 99)\n"
               "incident forensics (flight recorder is always on):\n"
               "       --incident-out b.json     crash-dump bundle path\n"
               "                                 (gansec.incident.v1; default\n"
               "                                 gansec-incident.json, \"\" to\n"
               "                                 disarm). /incidentz on the\n"
               "                                 --expose server serves live\n"
               "                                 bundles.\n"
               "       --incident-dump           also write a bundle after a\n"
               "                                 successful run\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const core::Args args(argc - 2, argv + 2, kFlags, kBoolFlags);
    apply_observability(args);
    LiveIntrospection live;
    live.start(args);

    const std::string report_path = args.get("report-out", "");
    std::unique_ptr<obs::RunReport> report;
    if (!report_path.empty()) {
      report = std::make_unique<obs::RunReport>(command);
      report->set_argv(argc - 1, argv + 1);
    }
    std::unique_ptr<obs::ProgressReporter> progress;
    if (args.has("progress")) {
      progress = std::make_unique<obs::ProgressReporter>(
          args.get_double("progress", 10.0));
    }

    int rc = 2;
    if (command == "graph") {
      rc = cmd_graph(report.get());
    } else if (command == "train") {
      rc = cmd_train(args, report.get());
    } else if (command == "analyze") {
      rc = cmd_analyze(args, report.get());
    } else if (command == "detect") {
      rc = cmd_detect(args, report.get());
    } else if (command == "sweep") {
      rc = cmd_sweep(args, report.get());
    } else if (command == "serve") {
      rc = cmd_serve(args, report.get());
    } else if (command == "loadgen") {
      rc = cmd_loadgen(args, report.get());
    } else {
      return usage();
    }
    progress.reset();
    // Stop the profiler and take the final resource sample before the
    // report captures metrics, so prof.samples / proc.* land in it.
    live.finish();
    if (report != nullptr) {
      report->capture_phases_from_trace();
      report->capture_metrics();
      report->write_file(report_path);
      GANSEC_LOG_INFO("report.written", {"path", report_path});
    }
    finish_observability(args);
    return rc;
  } catch (const gansec::Error& e) {
    GANSEC_LOG_ERROR("cli.fatal", {"what", e.what()});
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
