// gansec — command-line front end for the GAN-Sec methodology.
//
// Subcommands:
//   graph                        print G_CPPS, Algorithm 1 pairs and DOT
//   train   --model out.cgan     build dataset, train CGAN, save model
//   analyze --model m.cgan       Algorithm 3 + confidentiality on test data
//   detect  --model m.cgan       calibrate + evaluate the attack detector
//   sweep                        one CGAN per Algorithm 1 flow pair
//
// Common training/dataset flags: --samples N (per condition), --bins N,
// --window S, --iterations N, --seed N, --h W (Parzen width).
//
// Observability flags (all commands): --log-level L, --log-json,
// --trace-out trace.json, --metrics-out metrics.json. Logs go to stderr;
// result output stays on stdout, byte-identical at any thread count.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "gansec/am/printer_arch.hpp"
#include "gansec/core/args.hpp"
#include "gansec/core/execution.hpp"
#include "gansec/core/pipeline.hpp"
#include "gansec/cpps/dot.hpp"
#include "gansec/error.hpp"
#include "gansec/obs/log.hpp"
#include "gansec/obs/metrics.hpp"
#include "gansec/obs/trace.hpp"
#include "gansec/security/detector.hpp"
#include "gansec/security/report.hpp"
#include "gansec/version.hpp"

namespace {

using namespace gansec;

const std::set<std::string> kFlags = {
    "model", "samples", "bins", "window", "iterations", "seed", "h",
    "scaler", "attack-fraction", "threads", "log-level", "trace-out",
    "metrics-out"};

const std::set<std::string> kBoolFlags = {"log-json"};

// Installs the observability knobs before the command runs. The log level
// flag overrides GANSEC_LOG_LEVEL only when present, so the env default
// still works for flagless runs.
void apply_observability(const core::Args& args) {
  if (args.has("log-level")) {
    obs::set_log_level(obs::parse_log_level(args.get("log-level", "info")));
  }
  if (args.get_bool("log-json", false)) {
    obs::set_log_sink(std::make_shared<obs::JsonLinesSink>(std::clog));
  }
  if (args.has("trace-out")) {
    obs::set_tracing(true);
  }
}

// Writes the trace / metrics artifacts after the command finishes.
void finish_observability(const core::Args& args) {
  const std::string trace_path = args.get("trace-out", "");
  if (!trace_path.empty()) {
    obs::write_chrome_trace_file(trace_path);
    GANSEC_LOG_INFO("trace.written", {"path", trace_path},
                    {"events", obs::trace_events().size()});
  }
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    obs::write_metrics_json_file(metrics_path);
    GANSEC_LOG_INFO("metrics.written", {"path", metrics_path});
  }
}

core::PipelineConfig config_from(const core::Args& args) {
  core::PipelineConfig config;
  // 0 = auto (hardware concurrency); results are thread-count-invariant,
  // see the determinism contract in DESIGN.md "Parallel execution".
  const int threads = args.get_int("threads", 0);
  if (threads < 0) {
    throw InvalidArgumentError("--threads must be >= 0, got " +
                               std::to_string(threads));
  }
  config.execution.threads = static_cast<std::size_t>(threads);
  config.dataset.samples_per_condition =
      static_cast<std::size_t>(args.get_int("samples", 100));
  config.dataset.bins = static_cast<std::size_t>(args.get_int("bins", 100));
  config.dataset.window_s = args.get_double("window", 0.25);
  config.dataset.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2019));
  config.train.iterations =
      static_cast<std::size_t>(args.get_int("iterations", 1500));
  config.likelihood.parzen_h = args.get_double("h", 0.2);
  config.seed = config.dataset.seed;
  return config;
}

int cmd_graph() {
  const cpps::Architecture arch = am::make_printer_architecture();
  const cpps::CppsGraph graph(arch);
  const auto pairs = cpps::select_cross_domain_pairs(
      arch,
      cpps::generate_flow_pairs(graph, am::make_printer_historical_data()));
  std::cout << "architecture: " << arch.name() << " ("
            << arch.components().size() << " components, "
            << arch.flows().size() << " flows)\n";
  std::cout << "feedback flows removed:";
  for (const auto& f : graph.removed_feedback_flows()) std::cout << ' ' << f;
  std::cout << "\ncross-domain flow pairs:\n";
  for (const auto& p : pairs) {
    std::cout << "  Pr(" << p.second << " | " << p.first << ")\n";
  }
  std::cout << "\n" << cpps::to_dot(graph);
  return 0;
}

int cmd_train(const core::Args& args) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  const std::string scaler_path = args.get("scaler", model_path + ".scaler");
  core::GanSecPipeline pipeline(config_from(args));
  GANSEC_LOG_INFO("cli.train.start", {"model", model_path},
                  {"note", "dataset is generated first"});
  core::PipelineResult result = pipeline.run();
  result.model.save_file(model_path);
  {
    std::ofstream os(scaler_path);
    if (!os) throw IoError("cannot write scaler to " + scaler_path);
    pipeline.builder().scaler().save(os);
  }
  std::cout << "model written to " << model_path << "\n";
  std::cout << "scaler written to " << scaler_path << "\n";
  std::cout << "\ntraining summary (last iteration): g_loss="
            << result.history.back().g_loss
            << " d_loss=" << result.history.back().d_loss << "\n";
  std::cout << "\n"
            << security::format_likelihood_summary(result.likelihood);
  return 0;
}

int cmd_analyze(const core::Args& args) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  gan::Cgan model = gan::Cgan::load_file(model_path);
  core::PipelineConfig config = config_from(args);
  // analyze/detect run outside GanSecPipeline::run(), so install the
  // execution knobs (--threads) for the analyzers here.
  const core::ScopedExecution scoped(config.execution);
  config.dataset.bins = model.topology().data_dim;
  config.dataset.seed += 1;  // fresh test data, not the training draw
  am::DatasetBuilder builder(config.dataset);
  GANSEC_LOG_INFO("cli.analyze.start", {"model", model_path},
                  {"note", "generating held-out test data"});
  const am::LabeledDataset test = builder.build();

  security::LikelihoodConfig lik;
  lik.parzen_h = args.get_double("h", 0.2);
  const security::LikelihoodAnalyzer analyzer(lik);
  std::cout << security::format_likelihood_summary(
      analyzer.analyze(model, test));
  const security::ConfidentialityAnalyzer conf_analyzer;
  std::cout << "\n"
            << security::format_confidentiality(
                   conf_analyzer.analyze(model, test));
  return 0;
}

int cmd_detect(const core::Args& args) {
  const std::string model_path = args.get("model", "gansec-model.cgan");
  const std::string scaler_path = args.get("scaler", model_path + ".scaler");
  gan::Cgan model = gan::Cgan::load_file(model_path);
  core::PipelineConfig config = config_from(args);
  const core::ScopedExecution scoped(config.execution);
  config.dataset.bins = model.topology().data_dim;
  am::DatasetBuilder builder(config.dataset);
  // The detector must scale observations exactly as the training run did;
  // a refitted scaler shifts the features relative to the generator's
  // learned distribution. Load the scaler persisted by `train`, falling
  // back to refitting only when it is absent.
  if (std::ifstream scaler_in(scaler_path); scaler_in) {
    builder.restore_scaler(dsp::MinMaxScaler::load(scaler_in));
    GANSEC_LOG_INFO("cli.detect.scaler_loaded", {"path", scaler_path});
  } else {
    GANSEC_LOG_WARN("cli.detect.scaler_missing", {"path", scaler_path},
                    {"note", "refitting; detection quality may degrade"});
    builder.build();
  }

  security::AttackDetector detector(model, security::DetectorConfig{});
  security::AttackInjector injector(builder);
  detector.calibrate(
      injector.generate(25, 0.0, security::AttackKind::kNone));
  const double fraction = args.get_double("attack-fraction", 0.5);
  for (const auto kind : {security::AttackKind::kIntegrity,
                          security::AttackKind::kAvailability}) {
    std::cout << "\n" << security::attack_name(kind) << " attacks:\n"
              << security::format_detection(
                     detector.evaluate(injector.generate(20, fraction,
                                                         kind)));
  }
  return 0;
}

int cmd_sweep(const core::Args& args) {
  core::GanSecPipeline pipeline(config_from(args));
  const core::FlowPairSweep sweep = pipeline.run_flow_pairs();
  std::cout << "flow-pair sweep: " << sweep.outcomes.size()
            << " cross-domain pairs, one CGAN each\n";
  std::cout << "pair  margin      Pr(F_j | F_i)\n";
  for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
    const core::FlowPairOutcome& out = sweep.outcomes[i];
    const security::LikelihoodResult& lik = out.likelihood;
    double margin = 0.0;
    for (std::size_t c = 0; c < lik.condition_count(); ++c) {
      margin += lik.mean_correct(c) - lik.mean_incorrect(c);
    }
    margin /= static_cast<double>(lik.condition_count());
    std::printf("%4zu  %+.6f   Pr(%s | %s)\n", i, margin,
                out.pair.second.c_str(), out.pair.first.c_str());
  }
  const std::size_t leaky = sweep.most_leaky_pair();
  std::cout << "most leaky pair: #" << leaky << " Pr("
            << sweep.outcomes[leaky].pair.second << " | "
            << sweep.outcomes[leaky].pair.first << ")\n";
  return 0;
}

int usage() {
  std::cout << "gansec " << kVersionString
            << " — CGAN-based CPPS security analysis\n"
               "usage: gansec <graph|train|analyze|detect|sweep> [flags]\n"
               "  graph                     print G_CPPS + flow pairs + DOT\n"
               "  train   --model out.cgan  train and persist the CGAN\n"
               "  analyze --model m.cgan    Algorithm 3 + confidentiality\n"
               "  detect  --model m.cgan    attack-detection evaluation\n"
               "  sweep                     one CGAN per Algorithm 1 pair,\n"
               "                            leakage margin table\n"
               "flags: --samples N  --bins N  --window S  --iterations N\n"
               "       --seed N  --h W  --scaler PATH  --attack-fraction F\n"
               "       --threads N  (0 = all cores; results are identical\n"
               "                     at any thread count)\n"
               "observability:\n"
               "       --log-level trace|debug|info|warn|error|off\n"
               "       --log-json                JSON-lines logs on stderr\n"
               "       --trace-out trace.json    chrome://tracing spans\n"
               "       --metrics-out m.json      metrics registry snapshot\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const core::Args args(argc - 2, argv + 2, kFlags, kBoolFlags);
    apply_observability(args);
    int rc = 2;
    if (command == "graph") {
      rc = cmd_graph();
    } else if (command == "train") {
      rc = cmd_train(args);
    } else if (command == "analyze") {
      rc = cmd_analyze(args);
    } else if (command == "detect") {
      rc = cmd_detect(args);
    } else if (command == "sweep") {
      rc = cmd_sweep(args);
    } else {
      return usage();
    }
    finish_observability(args);
    return rc;
  } catch (const gansec::Error& e) {
    GANSEC_LOG_ERROR("cli.fatal", {"what", e.what()});
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
