// gansec_incident — inspector for gansec.incident.v1 flight-recorder
// bundles (the crash/anomaly black box written by obs/incident.cpp).
//
//   gansec_incident summarize BUNDLE.json
//       trigger, provenance, event counts per kind/tag, time range, drops
//   gansec_incident timeline BUNDLE.json [--limit N] [--kind K]
//       the merged trace-clock-ordered event timeline, one line per event
//   gansec_incident diff A.json B.json
//       side-by-side trigger/build/event-mix comparison of two bundles
//
// Exit codes: 0 ok, 1 not a valid incident bundle, 2 usage / IO error.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gansec/error.hpp"
#include "gansec/obs/incident.hpp"
#include "gansec/obs/json.hpp"

namespace {

using gansec::obs::JsonValue;

struct Bundle {
  std::string path;
  std::string trigger_kind;
  std::string trigger_detail;
  double trigger_ts_us = 0.0;
  std::string git_sha;
  std::string version;
  std::string hostname;
  double events_dropped = 0.0;
  const JsonValue* events = nullptr;  ///< points into `doc`
  JsonValue doc;
};

std::string string_at(const JsonValue* v, const char* fallback = "?") {
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

double number_at(const JsonValue* v, double fallback = 0.0) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

/// Loads and structurally validates one bundle; prints the reason and
/// returns false when `path` is not a gansec.incident.v1 artifact.
bool load_bundle(const std::string& path, Bundle& out) {
  out.path = path;
  out.doc = gansec::obs::parse_json_file(path);
  const JsonValue* schema = out.doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != gansec::obs::incident::kIncidentSchema) {
    std::fprintf(stderr, "%s: not a %s artifact\n", path.c_str(),
                 gansec::obs::incident::kIncidentSchema);
    return false;
  }
  const JsonValue* trigger = out.doc.find("trigger");
  if (trigger == nullptr || !trigger->is_object()) {
    std::fprintf(stderr, "%s: missing trigger object\n", path.c_str());
    return false;
  }
  out.trigger_kind = string_at(trigger->find("kind"));
  out.trigger_detail = string_at(trigger->find("detail"), "");
  out.trigger_ts_us = number_at(trigger->find("ts_us"));
  out.events = out.doc.find("events");
  if (out.events == nullptr || !out.events->is_array()) {
    std::fprintf(stderr, "%s: missing events array\n", path.c_str());
    return false;
  }
  out.git_sha = string_at(out.doc.find_path({"build", "git_sha"}));
  out.version = string_at(out.doc.find_path({"build", "version"}));
  out.hostname = string_at(out.doc.find_path({"host", "hostname"}));
  out.events_dropped = number_at(out.doc.find("events_dropped"));
  return true;
}

std::map<std::string, std::size_t> kind_histogram(const Bundle& b) {
  std::map<std::string, std::size_t> kinds;
  for (const JsonValue& ev : b.events->as_array()) {
    ++kinds[string_at(ev.find("kind"))];
  }
  return kinds;
}

int cmd_summarize(const std::string& path) {
  Bundle b;
  if (!load_bundle(path, b)) return 1;
  const auto& events = b.events->as_array();
  std::printf("bundle     %s\n", b.path.c_str());
  std::printf("trigger    %s%s%s\n", b.trigger_kind.c_str(),
              b.trigger_detail.empty() ? "" : ": ",
              b.trigger_detail.c_str());
  std::printf("build      %s (%s) on %s\n", b.version.c_str(),
              b.git_sha.c_str(), b.hostname.c_str());
  std::printf("events     %zu (%.0f overwritten before capture)\n",
              events.size(), b.events_dropped);
  if (!events.empty()) {
    const double t0 = number_at(events.front().find("ts_us"));
    const double t1 = number_at(events.back().find("ts_us"));
    std::printf("time span  %.3f ms (ts_us %.0f .. %.0f)\n",
                (t1 - t0) / 1000.0, t0, t1);
  }
  std::map<std::string, std::size_t> kinds = kind_histogram(b);
  for (const auto& [kind, count] : kinds) {
    std::printf("  %-16s %zu\n", kind.c_str(), count);
  }
  std::printf("metrics    %s\n",
              b.doc.find("metrics") != nullptr &&
                      !b.doc.find("metrics")->is_null()
                  ? "present"
                  : "null (crash-path bundle)");
  std::printf("profile    %s\n",
              b.doc.find("profile") != nullptr &&
                      !b.doc.find("profile")->is_null()
                  ? "present"
                  : "null");
  return 0;
}

int cmd_timeline(const std::string& path, std::size_t limit,
                 const std::string& kind_filter) {
  Bundle b;
  if (!load_bundle(path, b)) return 1;
  const auto& events = b.events->as_array();
  std::size_t shown = 0;
  for (const JsonValue& ev : events) {
    const std::string kind = string_at(ev.find("kind"));
    if (!kind_filter.empty() && kind != kind_filter) continue;
    if (limit != 0 && shown >= limit) {
      std::printf("... (%zu more)\n", events.size() - shown);
      break;
    }
    ++shown;
    std::printf("%12.0f t%02.0f %-14s %-22s seq=%-8.0f a=%-4.0f "
                "v1=%-12.4f v2=%-12.4f code=%.0f\n",
                number_at(ev.find("ts_us")), number_at(ev.find("thread")),
                kind.c_str(), string_at(ev.find("tag"), "").c_str(),
                number_at(ev.find("seq")), number_at(ev.find("a")),
                number_at(ev.find("v1")), number_at(ev.find("v2")),
                number_at(ev.find("code")));
  }
  if (shown == 0) std::printf("(no events%s)\n",
                              kind_filter.empty() ? "" : " match filter");
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  Bundle a;
  Bundle b;
  if (!load_bundle(path_a, a)) return 1;
  if (!load_bundle(path_b, b)) return 1;
  std::printf("%-18s %-28s %-28s\n", "", "A", "B");
  std::printf("%-18s %-28s %-28s\n", "bundle", a.path.c_str(),
              b.path.c_str());
  std::printf("%-18s %-28s %-28s\n", "trigger", a.trigger_kind.c_str(),
              b.trigger_kind.c_str());
  std::printf("%-18s %-28s %-28s%s\n", "git_sha", a.git_sha.c_str(),
              b.git_sha.c_str(), a.git_sha == b.git_sha ? "" : "  <- differs");
  std::printf("%-18s %-28zu %-28zu\n", "events",
              a.events->as_array().size(), b.events->as_array().size());
  std::printf("%-18s %-28.0f %-28.0f\n", "events_dropped", a.events_dropped,
              b.events_dropped);
  std::map<std::string, std::size_t> ka = kind_histogram(a);
  std::map<std::string, std::size_t> kb = kind_histogram(b);
  std::map<std::string, std::pair<std::size_t, std::size_t>> merged;
  for (const auto& [kind, n] : ka) merged[kind].first = n;
  for (const auto& [kind, n] : kb) merged[kind].second = n;
  for (const auto& [kind, counts] : merged) {
    std::printf("  %-16s %-28zu %-28zu%s\n", kind.c_str(), counts.first,
                counts.second,
                counts.first == counts.second ? "" : "  <- differs");
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: gansec_incident summarize BUNDLE.json\n"
               "       gansec_incident timeline  BUNDLE.json "
               "[--limit N] [--kind K]\n"
               "       gansec_incident diff      A.json B.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) return usage();
    const std::string command = argv[1];
    if (command == "summarize") {
      return cmd_summarize(argv[2]);
    }
    if (command == "timeline") {
      std::size_t limit = 0;
      std::string kind;
      for (int i = 3; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        if (flag == "--limit") {
          limit = static_cast<std::size_t>(std::stoul(argv[i + 1]));
        } else if (flag == "--kind") {
          kind = argv[i + 1];
        } else {
          return usage();
        }
      }
      return cmd_timeline(argv[2], limit, kind);
    }
    if (command == "diff") {
      if (argc < 4) return usage();
      return cmd_diff(argv[2], argv[3]);
    }
    return usage();
  } catch (const gansec::Error& e) {
    std::fprintf(stderr, "gansec_incident: %s\n", e.what());
    return 2;
  }
}
