// Process-wide metrics registry: counters, gauges, fixed-bucket
// histograms, and append-only series.
//
// Hot-path contract: after a one-time registry lookup (mutex + map, done
// once per call site — cache the returned reference), every update is
// lock-free: counters and histogram buckets are relaxed atomic adds,
// gauges and floating-point accumulators are CAS loops. Snapshots taken
// after the writing threads quiesce observe exact totals; snapshots taken
// mid-flight observe a consistent-enough view for monitoring (each cell
// individually atomic).
//
// Series are the exception: they hold (step, value) pairs behind a mutex,
// intended for low-frequency appends (one per training iteration). Give
// each concurrent producer its own series name (the flow-pair sweep
// derives one scope per pair) so appends never contend and the per-series
// order is the producer's program order.
//
// Registered objects live for the life of the process; references handed
// out by the registry never dangle (the registry is intentionally leaked
// so instrumented code in static destructors — e.g. the global thread
// pool joining its workers — can still update metrics safely).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gansec::obs {

/// Monotonic event count. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-observed value. set() is an atomic store; add() and set_max()
/// are CAS loops.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  /// Monotonic high-water update: raises the gauge to `candidate` if (and
  /// only if) it exceeds the current value; safe from concurrent writers.
  void set_max(double candidate);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper edges; an implicit
/// overflow bucket catches everything above the last edge. observe() is a
/// binary search plus relaxed atomic adds (bucket, count) and CAS loops
/// (sum, min, max) — no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 cells
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
  };
  Snapshot snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Percentile roll-up of one histogram snapshot — what run reports and
/// bench artifacts export instead of raw buckets. All fields are 0 when
/// the histogram is empty.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Prometheus-style quantile estimate from bucket counts: locates the
/// bucket containing rank q*count and interpolates linearly inside it,
/// clamping the first/last buckets to the observed min/max. `q` must be
/// in [0, 1]; the estimate's error is bounded by the bucket width.
double histogram_percentile(const Histogram::Snapshot& snapshot, double q);

HistogramSummary summarize(const Histogram::Snapshot& snapshot);

/// (step, value) time series (e.g. per-iteration losses). Mutex-guarded:
/// intended for one producer at low frequency.
///
/// Memory is bounded: each series is a ring buffer of at most
/// `capacity()` points (default `default_series_capacity()`, settable
/// per series). When full, appends overwrite the oldest point; every
/// overwritten point is counted in `dropped()` and in the process-wide
/// `obs.series.dropped_points` counter, so long sweeps cannot grow the
/// registry without bound — and the loss is observable, never silent.
class Series {
 public:
  Series();

  void append(double step, double value);
  /// Retained points, oldest first (producer order).
  std::vector<std::pair<double, double>> points() const;
  std::size_t size() const;
  /// Points overwritten by the ring since construction / reset().
  std::uint64_t dropped() const;

  /// Registration name, set once by the registry so diagnostics (the
  /// first-drop warning) can say which series started losing points.
  void set_name(std::string name);
  const std::string& name() const { return name_; }

  std::size_t capacity() const;
  /// Re-caps the ring (0 is invalid). Shrinking drops the oldest points,
  /// counting them as dropped.
  void set_capacity(std::size_t capacity);

  void reset();

 private:
  /// Rotates points_ so index 0 is the oldest point (head_ becomes 0).
  void linearize_locked();

  mutable std::mutex mu_;
  std::string name_;
  std::vector<std::pair<double, double>> points_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest point once the ring wraps
  std::uint64_t dropped_ = 0;
  bool drop_warned_ = false;  ///< first-drop warning already emitted
};

/// Process-wide default ring capacity for newly created Series (initial
/// value 65536 points ≈ 1 MiB per series). Thread-safe; affects only
/// series created after the call.
void set_default_series_capacity(std::size_t capacity);
std::size_t default_series_capacity();

/// Point-in-time copy of every registered metric, in registration order.
/// Series are exported as their retained points; exposition formats that
/// have no series notion (OpenMetrics) simply skip them.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
      series;
};

/// Name-keyed registry. Lookups register on first use and always return
/// the same object for the same name; a histogram re-registered with
/// different bounds keeps the first registration's bounds.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  Series& series(std::string_view name);

  /// Consistent-enough copy of every metric (each cell individually
  /// atomic) — the input to render_openmetrics() and anything else that
  /// wants the whole registry without holding its lock.
  RegistrySnapshot snapshot() const;

  /// Full snapshot as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...},"series":{...}}.
  /// Always valid JSON (non-finite numbers become null).
  std::string to_json() const;

  /// Zeroes every registered metric in place. Registrations (and any
  /// cached references) stay valid. Test isolation only.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // Insertion-ordered name->metric maps. The metric objects are owned via
  // unique_ptr, so handed-out references survive vector growth; linear
  // lookup is fine because call sites cache the reference.
  template <typename T>
  using NameMap = std::vector<std::pair<std::string, std::unique_ptr<T>>>;
  NameMap<Counter> counters_;
  NameMap<Gauge> gauges_;
  NameMap<Histogram> histograms_;
  NameMap<Series> series_;

  template <typename T, typename... Args>
  T& find_or_add(NameMap<T>& map, std::string_view name, Args&&... args);
};

/// Registry shorthands. Call once per call site and cache the reference:
///   static obs::Counter& hits = obs::counter("cache.hits");
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> bounds);
Series& series(std::string_view name);

/// MetricsRegistry::instance().to_json() written to a file; throws IoError
/// when the path cannot be opened.
void write_metrics_json_file(const std::string& path);

}  // namespace gansec::obs
