// Flight recorder — the runtime's always-on black box.
//
// Every thread that calls `record()` owns a fixed-capacity ring of
// structured events (window scored, verdict flip, model swap, train step,
// phase marker, ...). Recording is wait-free: a relaxed cursor bump claims
// a slot, a seqlock-style odd/even commit stamp brackets the field stores,
// and every field is a relaxed atomic word so a concurrent `snapshot()` —
// or the crash handler walking the rings after SIGSEGV — can read the
// slots without locks, tears, or TSan complaints. Storage is preallocated
// when a thread first records (never from a signal handler), so the dump
// path in obs/incident.cpp touches nothing but atomics and write(2).
//
// Tags must be string literals (or otherwise immortal), exactly like span
// and metric names: slots store the pointer, not the bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gansec::obs::flight {

/// What happened. Values are part of the gansec.incident.v1 wire format —
/// append only, never renumber.
enum class EventKind : std::uint16_t {
  kMark = 0,          ///< free-form marker (CLI, tests)
  kPhaseBegin = 1,    ///< pipeline/bench phase entered
  kPhaseEnd = 2,      ///< pipeline/bench phase left
  kWindowScored = 3,  ///< serve: one window through the detector
  kWindowDropped = 4, ///< serve: ring overwrote the oldest window
  kVerdictFlip = 5,   ///< serve: a stream's verdict changed
  kModelSwap = 6,     ///< serve: hot-swap installed a new generation
  kTrainStep = 7,     ///< gan: one adversarial iteration
  kDetectorRun = 8,   ///< security: anomaly run opened/closed
  kQueueDepth = 9,    ///< serve: ring occupancy sample at ingest
  kTrigger = 10,      ///< incident: a bundle trigger fired
};

const char* event_kind_name(EventKind kind);

/// One decoded event, as returned by snapshot(). `tag` points at the
/// immortal string the recording site passed in.
struct EventView {
  std::uint64_t ts_us = 0;   ///< trace clock (obs::trace_now_us)
  std::uint64_t seq = 0;     ///< site-defined sequence (window id, iteration)
  std::uint64_t a = 0;       ///< site-defined id (stream, generation, signo)
  double v1 = 0.0;           ///< site-defined value (score, d_loss, depth)
  double v2 = 0.0;           ///< site-defined value (threshold, g_loss)
  std::uint32_t thread = 0;  ///< recorder thread-slot index
  EventKind kind = EventKind::kMark;
  std::uint16_t code = 0;    ///< site-defined small code (verdict, phase)
  const char* tag = nullptr;
};

/// Aggregate accounting across every thread ring.
struct Stats {
  std::size_t threads = 0;            ///< thread slots ever claimed
  std::size_t events_per_thread = 0;  ///< ring capacity per thread
  std::uint64_t recorded = 0;         ///< total record() calls committed
  std::uint64_t overwritten = 0;      ///< events lost to ring wraparound
};

/// Records one event into the calling thread's ring. Wait-free after the
/// thread's first call (which allocates its ring); safe from any number of
/// threads concurrently; a no-op when disabled or when every thread slot
/// is taken. `tag` must outlive the process (string literal).
void record(EventKind kind, const char* tag, std::uint64_t seq = 0,
            std::uint64_t a = 0, double v1 = 0.0, double v2 = 0.0,
            std::uint16_t code = 0);

/// RAII phase marker: records kPhaseBegin now and kPhaseEnd on scope exit.
class PhaseMark {
 public:
  explicit PhaseMark(const char* tag);
  ~PhaseMark();
  PhaseMark(const PhaseMark&) = delete;
  PhaseMark& operator=(const PhaseMark&) = delete;

 private:
  const char* tag_;
};

/// Recording on/off. Defaults to on (the recorder is the black box; its
/// cost is gated at <=2% by bench_perf_core/bench_serve). The benches flip
/// it off to measure that overhead.
bool enabled();
void set_enabled(bool on);

/// Consistent point-in-time copy of every committed event across all
/// thread rings, sorted by trace-clock timestamp. Safe to call while
/// writers are recording: slots caught mid-write are skipped.
std::vector<EventView> snapshot();

Stats stats();

namespace detail {
// The crash handler's view of the rings: everything here is
// async-signal-safe (atomic loads only, no allocation). One raw slot is
// eight atomic words; `RawEvent` is the plain decoded copy.
struct RawEvent {
  std::uint64_t ts_us;
  std::uint64_t seq;
  std::uint64_t a;
  std::uint64_t v1_bits;
  std::uint64_t v2_bits;
  std::uint64_t tag_ptr;
  std::uint32_t thread;
  std::uint16_t kind;
  std::uint16_t code;
};

std::size_t max_events() noexcept;  ///< threads * events_per_thread bound

/// Copies every committed slot into `out` (capacity `cap`), returning the
/// count. Async-signal-safe: no locks, no allocation. Events arrive in
/// ring order, NOT time order; the caller sorts.
std::size_t collect(RawEvent* out, std::size_t cap) noexcept;

std::uint64_t overwritten_total() noexcept;
}  // namespace detail

}  // namespace gansec::obs::flight
