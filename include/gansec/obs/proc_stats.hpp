// Resource telemetry from /proc/self: RSS, fault counts, CPU time, and
// thread-level CPU usage, sampled periodically into the metrics
// registry by a background thread (ResourceSampler).
//
// Exported metrics (all registered in tools/metrics_manifest.txt):
//   gauge  proc.rss_bytes              resident set size
//   gauge  proc.vm_bytes               virtual memory size
//   gauge  proc.minor_faults           cumulative minor faults
//   gauge  proc.major_faults           cumulative major faults
//   gauge  proc.utime_seconds          cumulative user CPU time
//   gauge  proc.stime_seconds          cumulative system CPU time
//   gauge  proc.cpu_percent            process CPU% over the last interval
//   gauge  proc.top_thread_cpu_percent hottest single thread's CPU%
//   gauge  proc.threads                thread count
//   gauge  proc.alloc_bytes_per_s      workspace-arena allocation rate
//   series proc.rss_bytes / proc.cpu_percent  (step = seconds since start)
//
// On non-Linux hosts /proc is absent; read_proc_self() returns a
// zeroed snapshot with `valid == false` and the sampler idles without
// erroring, so the library stays portable even though the numbers are
// Linux-only.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace gansec::obs {

/// One parse of /proc/self/stat + /proc/self/status.
struct ProcSnapshot {
  bool valid = false;           ///< false when /proc is unreadable
  std::uint64_t rss_bytes = 0;  ///< resident set size
  std::uint64_t vm_bytes = 0;   ///< virtual memory size
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  double utime_seconds = 0.0;  ///< cumulative user-mode CPU time
  double stime_seconds = 0.0;  ///< cumulative kernel-mode CPU time
  long threads = 0;
};

/// Reads and parses /proc/self/stat once. Never throws: on any read or
/// parse failure the result has `valid == false`.
ProcSnapshot read_proc_self();

/// Parses one /proc/<pid>/stat (or task/<tid>/stat) line. Exposed for
/// tests; `valid == false` on malformed input. Handles the kernel's
/// "comm can contain spaces and parens" trap by splitting after the
/// *last* ')'.
ProcSnapshot parse_proc_stat_line(const std::string& line);

/// Background thread that samples /proc/self (and /proc/self/task for
/// the hottest single thread) every `interval_s`, publishing the
/// gauges/series listed above. Rate metrics (cpu_percent,
/// alloc_bytes_per_s, top_thread_cpu_percent) are deltas over the last
/// interval and need two samples before they are meaningful.
class ResourceSampler {
 public:
  struct Config {
    double interval_s = 0.5;  ///< sampling period
  };

  explicit ResourceSampler(Config config);
  ~ResourceSampler();  ///< stops and joins the sampling thread

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Takes one sample immediately (also called by the background loop).
  /// Safe to call from tests without start().
  void sample_once();

  void start();
  void stop();
  bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gansec::obs
