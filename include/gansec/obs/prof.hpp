// Sampling CPU profiler: SIGPROF via setitimer(ITIMER_PROF), an
// async-signal-safe handler that appends raw program counters to a
// preallocated slot array, and offline symbolization (dladdr +
// __cxa_demangle) into collapsed-stack ("folded") output compatible
// with flamegraph.pl, plus a schema-versioned `gansec.profile.v1` JSON
// artifact with per-phase attribution joined against trace spans.
//
// Signal-safety contract (enforced by the gansec_lint `signal-unsafe`
// rule over the signal-context regions marked in prof.cpp): the
// SIGPROF handler may only touch preallocated memory, relaxed/release
// atomics, and the async-signal-safe subset — no allocation, no
// locks, no iostreams, no string building. Everything expensive
// (symbolization, aggregation, JSON) happens offline in stop() or
// snapshot_report().
//
// Sample timestamps share trace_now_us()'s clock and epoch, so a
// profile joins exactly against trace spans: each sample is attributed
// to the innermost (shortest) span whose [start, end) interval
// contains it, or to "(untraced)" when no span covers it.
//
// The profiler takes over SIGPROF for the life of the process; the
// handler is installed once and disarmed (not uninstalled) on stop()
// so a late-delivered signal can never hit SIG_DFL (which terminates).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gansec::obs::prof {

/// Hard cap on recorded stack depth per sample (deeper frames are
/// truncated at the root end — the leaf frames are always kept).
inline constexpr int kMaxDepth = 64;

struct ProfileConfig {
  /// Sampling rate in CPU-time Hz. Valid range [1, 1000].
  double hz = 99.0;
  /// Slot-array capacity; samples past this are counted as dropped
  /// (prof.samples_dropped), never overwritten — committed samples are
  /// immutable, which is what makes concurrent /profilez reads safe.
  /// 32768 slots at 99 Hz is ~5.5 minutes of profile.
  std::size_t max_samples = 1u << 15;
  /// Recorded frames per sample, clamped to [1, kMaxDepth].
  int max_depth = kMaxDepth;

  enum class Unwinder {
    /// backtrace(3): works regardless of -fomit-frame-pointer (uses
    /// unwind tables); warmed up at start() so the handler never takes
    /// libgcc's one-time init path. Default.
    kBacktrace,
    /// Raw frame-pointer chain walk: cheaper per sample but requires
    /// -fno-omit-frame-pointer to see anything past the leaf; the walk
    /// sanity-checks alignment/monotonicity/stride, so on an
    /// FP-omitting build it degrades to leaf-only samples rather than
    /// crashing (best effort).
    kFramePointer,
  };
  Unwinder unwinder = Unwinder::kBacktrace;
};

/// Aggregated, symbolized result of one profiling session.
struct ProfileReport {
  double hz = 0.0;
  double duration_s = 0.0;           ///< wall time between start and stop
  std::uint64_t samples = 0;         ///< committed samples
  std::uint64_t dropped = 0;         ///< lost to a full slot array
  /// Total frames across all samples, counted after tidy_frames() (root
  /// scaffolding trimmed, unresolved same-module runs collapsed).
  std::uint64_t frames = 0;
  std::uint64_t symbolized_frames = 0;  ///< frames with a resolved symbol
  /// symbolized_frames / frames (0 when no frames).
  double symbolized_fraction = 0.0;
  /// Folded stack ("root;mid;leaf") -> sample count, descending count.
  std::vector<std::pair<std::string, std::uint64_t>> stacks;
  /// Trace-span name -> samples attributed, descending count. Samples
  /// outside every span land in "(untraced)".
  std::vector<std::pair<std::string, std::uint64_t>> phases;
};

/// One frame of a sample after offline symbolization, root-first.
struct Frame {
  std::string name;        ///< demangled symbol, "module`+0xOFF", or "(unknown)"
  bool symbolized = false; ///< a real symbol name was resolved
  std::string module;      ///< basename of the containing object, "" if unknown
};

/// Post-processing applied to each sample's root-first frame list before
/// folding and before the symbolized-frame accounting:
///   1. Root trim: process/thread startup scaffolding — every frame outer
///      than the first symbolized frame that is not `_start` or
///      `__libc_start_main` — is dropped, so folded stacks begin at
///      main() (or the thread entry). If the whole stack would be
///      trimmed, it is kept untouched instead.
///   2. Module collapse: a run of two or more consecutive unresolved
///      frames from the same shared object (internal frames of a
///      library shipped without symbols) becomes a single "[module]"
///      placeholder frame, the same convention perf uses for unknown
///      regions. A lone unresolved frame keeps its precise
///      "module`+0xOFF" name.
std::vector<Frame> tidy_frames(std::vector<Frame> frames);

/// flamegraph.pl input: one "stack count\n" line per folded stack.
std::string to_folded(const ProfileReport& report);

/// gansec.profile.v1 JSON artifact (always valid JSON).
std::string to_json(const ProfileReport& report);

/// Process-wide profiler (ITIMER_PROF is per-process, so there can be
/// only one). start() throws InvalidArgumentError on a bad config or
/// when already running.
class SamplingProfiler {
 public:
  static SamplingProfiler& instance();

  void start(const ProfileConfig& config);
  /// Disarms the timer, waits for in-flight handlers, symbolizes, and
  /// aggregates. Throws InvalidArgumentError when not running.
  ProfileReport stop();
  /// Symbolizes the samples committed so far WITHOUT stopping — the
  /// /profilez endpoint. Returns an empty report when not running.
  ProfileReport snapshot_report() const;

  bool running() const;
  std::uint64_t samples_captured() const;

 private:
  SamplingProfiler() = default;
};

/// Writes to_folded() to `folded_path` and, when `json_path` is
/// non-empty, to_json() to `json_path`. Throws IoError on failure.
void write_profile_files(const ProfileReport& report,
                         const std::string& folded_path,
                         const std::string& json_path);

}  // namespace gansec::obs::prof
