// Minimal JSON utilities shared by the observability sinks, the run-report
// and benchmark-artifact writers, and their tests: string escaping, safe
// number formatting, a full-grammar syntax validator, and a small DOM
// parser (`parse_json`) for tools that must read artifacts back —
// gansec_benchdiff compares two BENCH_*.json files without any external
// dependency.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gansec::obs {

/// Escapes for inclusion inside a JSON string literal (quotes, backslash,
/// control characters as \uXXXX). Does not add surrounding quotes.
std::string json_escape(std::string_view text);

/// Renders a double as a JSON token: shortest round-trip decimal for
/// finite values, `null` for NaN/inf (JSON has no non-finite numbers).
std::string json_number(double value);

/// Strict RFC 8259 syntax check of one complete JSON value. On failure
/// returns false and, when `error` is non-null, stores a short reason
/// with the byte offset.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// Parsed JSON value. Objects keep member insertion order (artifact diffs
/// stay stable); lookups are linear, which is fine at artifact scale.
/// \u escapes decode to UTF-8 (surrogate pairs included).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each throws InvalidArgumentError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<Member>& as_object() const;

  /// Object member by key, or nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Nested lookup: find("a")->find("b") without null checks at each hop.
  const JsonValue* find_path(std::initializer_list<std::string_view> keys)
      const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Parses one complete RFC 8259 value; throws ParseError (with a byte
/// offset) on any syntax error or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Reads and parses a whole file; throws IoError / ParseError.
JsonValue parse_json_file(const std::string& path);

}  // namespace gansec::obs
