// Minimal JSON utilities shared by the observability sinks and their
// tests: string escaping, safe number formatting, and a full-grammar
// syntax validator (no DOM — the emitters write JSON directly and the
// tests only need "does this parse, and does it mention X").
#pragma once

#include <string>
#include <string_view>

namespace gansec::obs {

/// Escapes for inclusion inside a JSON string literal (quotes, backslash,
/// control characters as \uXXXX). Does not add surrounding quotes.
std::string json_escape(std::string_view text);

/// Renders a double as a JSON token: shortest round-trip decimal for
/// finite values, `null` for NaN/inf (JSON has no non-finite numbers).
std::string json_number(double value);

/// Strict RFC 8259 syntax check of one complete JSON value. On failure
/// returns false and, when `error` is non-null, stores a short reason
/// with the byte offset.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace gansec::obs
