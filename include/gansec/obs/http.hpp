// Dependency-free HTTP/1.1 exposition server (POSIX sockets) for live
// introspection. Serves:
//   GET /metrics   OpenMetrics text exposition of the metrics registry
//   GET /healthz   "ok" (liveness)
//   GET /profilez  collapsed-stack snapshot of the running profiler
//                  (empty body when the profiler is off)
//   GET /incidentz on-demand gansec.incident.v1 bundle: the flight
//                  recorder's recent events plus metrics/profile dumps
//
// Scope: one accept thread handling one connection at a time, bound to
// 127.0.0.1 by default — this is an operator scrape endpoint for
// gansec_top / curl / a local Prometheus agent, not a general web
// server. Each response closes the connection (Connection: close),
// which keeps the loop allocation-simple and is exactly how scrapers
// use it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace gansec::obs {

class MetricsServer {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    std::uint16_t port = 0;
  };

  /// Binds and starts the accept thread; throws IoError when the
  /// socket cannot be bound (address in use, privileged port, ...).
  explicit MetricsServer(Config config);
  ~MetricsServer();  ///< stops and joins

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound port (resolved even when Config::port was 0).
  std::uint16_t port() const;
  /// Total requests answered (including 404s).
  std::uint64_t requests_served() const;
  void stop();  ///< idempotent

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Minimal HTTP GET helper for gansec_top and the quickcheck script's
/// self-test: fetches http://host:port/path and returns the response
/// body. Throws IoError on connect/read failure or non-200 status.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, double timeout_s = 2.0);

}  // namespace gansec::obs
