// Incident forensics: turns the flight recorder's rings into durable,
// schema-versioned `gansec.incident.v1` bundles.
//
// Two dump paths with very different freedoms (DESIGN.md §16):
//
//  * Normal context (CLI demand, /incidentz, verdict flip): render a full
//    bundle — merged event timeline, metrics dump, live profiler stacks,
//    build/host provenance — with ordinary heap machinery.
//  * Fatal signal (SIGSEGV/SIGABRT/SIGFPE/SIGBUS): `signal_dump()` writes
//    a minimal-but-valid bundle using only preallocated storage, atomic
//    loads, and write(2). Everything it needs (output path, provenance
//    JSON, sort scratch) is preformatted/preallocated by `arm()`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gansec::obs::incident {

inline constexpr const char* kIncidentSchema = "gansec.incident.v1";

/// Preallocates the crash-dump scratch and preformats the static parts of
/// the bundle (path, build/host provenance) so `signal_dump()` never
/// allocates. Idempotent; re-arming replaces the output path. Must be
/// called from normal context. Does NOT install signal handlers — that is
/// `register_fatal_signal_dump()` in obs/report.hpp, which claims the
/// artifact flush and re-raises after dumping.
void arm(std::string_view bundle_path);

bool armed();

/// The armed bundle path ("" when unarmed).
std::string bundle_path();

/// Renders a full bundle now (normal context): events + metrics +
/// profiler stacks (when sampling) + provenance. `trigger` and `detail`
/// name why ("cli", "http", "verdict_flip", ...).
std::string render_bundle(std::string_view trigger, std::string_view detail);

/// Renders and writes a full bundle to the armed path (or `path` when
/// given). Returns the path written. Throws IoError on write failure.
std::string write_bundle(std::string_view trigger, std::string_view detail,
                         std::string_view path = {});

/// Rate-limited trigger for hot-path callers (the serve verdict-flip
/// site): writes a full bundle at most once per `kMinTriggerGapUs`, drops
/// the rest. No-op when unarmed. Never throws (a forensics failure must
/// not take down the monitor). Returns true when a bundle was written.
inline constexpr std::uint64_t kMinTriggerGapUs = 5'000'000;
bool maybe_trigger(const char* trigger, const char* detail) noexcept;

/// Async-signal-safe crash dump: writes a minimal schema-valid bundle
/// (events timeline + preformatted provenance, `"metrics":null`,
/// `"profile":null`) to the armed path via write(2). Safe to call from a
/// SIGSEGV handler; a silent no-op when unarmed.
void signal_dump(int sig) noexcept;

}  // namespace gansec::obs::incident
