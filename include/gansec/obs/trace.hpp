// RAII trace spans with chrome://tracing export.
//
// GANSEC_SPAN("pipeline.train") opens a span that closes at scope exit;
// nested spans nest naturally in the exported timeline because chrome's
// trace viewer (and Perfetto) reconstructs the stack from per-thread
// (ts, dur) containment of "X" complete events.
//
// Cost model: tracing is off by default; a disabled span is one relaxed
// atomic load in the constructor and one branch in the destructor — no
// clock reads, no allocation. When enabled, each span costs two
// steady_clock reads and one push into a per-thread buffer (a mutex that
// is only ever contended by a trace flush), so enabling tracing never
// serializes the parallel engine and cannot perturb any computed result —
// the serial-vs-parallel equivalence guarantees hold with tracing on.
//
// Span names must be string literals (or otherwise outlive the recorder):
// events store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gansec::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;   ///< start, microseconds since the trace epoch
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;     ///< stable small id assigned per thread
};

/// Global on/off switch (relaxed atomic). Enabling mid-run is fine; spans
/// already open stay unrecorded.
void set_tracing(bool enabled);
bool tracing_enabled();

/// Microseconds since the process-wide trace epoch (steady clock).
std::uint64_t trace_now_us();

/// Snapshot of every recorded event, merged across threads and sorted by
/// start time.
std::vector<TraceEvent> trace_events();

/// Drops all recorded events (buffers stay registered).
void clear_trace();

/// Writes {"traceEvents":[...]} in chrome://tracing / Perfetto format.
void write_chrome_trace(std::ostream& os);
void write_chrome_trace_file(const std::string& path);  ///< throws IoError

namespace detail {
void record_span(const char* name, std::uint64_t start_us,
                 std::uint64_t end_us);
}  // namespace detail

class Span {
 public:
  explicit Span(const char* name)
      : name_(name), active_(tracing_enabled()) {
    if (active_) start_us_ = trace_now_us();
  }

  ~Span() { end(); }

  /// Closes the span early (for sequential stage timing without nesting
  /// scopes). Idempotent.
  void end() {
    if (active_) {
      active_ = false;
      detail::record_span(name_, start_us_, trace_now_us());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_us_ = 0;
  bool active_;
};

}  // namespace gansec::obs

#define GANSEC_OBS_CONCAT_INNER(a, b) a##b
#define GANSEC_OBS_CONCAT(a, b) GANSEC_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define GANSEC_SPAN(name) \
  ::gansec::obs::Span GANSEC_OBS_CONCAT(gansec_span_, __LINE__)(name)
