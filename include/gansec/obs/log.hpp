// Structured, leveled logging for every gansec layer.
//
// Call sites use the GANSEC_LOG_* macros with a static message and a short
// list of key=value fields:
//
//   GANSEC_LOG_INFO("training started", {"pairs", pairs.size()},
//                   {"iterations", config.iterations});
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled: a call site below the compile-time
//     floor (GANSEC_LOG_COMPILE_LEVEL) vanishes entirely; one at or above
//     it but below the runtime level costs a single relaxed atomic load —
//     field expressions are never evaluated.
//  2. Thread safety: records are formatted on the calling thread and
//     handed to one process-wide sink whose write path is serialized, so
//     lines from concurrent flow-pair training never interleave.
//  3. Machine parseability: the JSON-lines sink emits one self-contained
//     JSON object per record (`--log-json` in the CLI); the text sink is
//     the human-facing `ts LEVEL msg key=value ...` form.
//
// The runtime level is initialized from the GANSEC_LOG_LEVEL environment
// variable (trace|debug|info|warn|error|off) before main() runs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace gansec::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// "trace", "debug", ... (lowercase, stable — part of the sink formats).
std::string_view log_level_name(LogLevel level);

/// Parses a level name (case-insensitive); throws InvalidArgumentError on
/// anything that is not trace|debug|info|warn|error|off.
LogLevel parse_log_level(std::string_view name);

/// One key=value field attached to a record. Values are captured by value
/// (numbers, bools) or by view (strings — the referenced storage only
/// needs to live until the log statement's full expression ends, which
/// covers temporaries passed inline).
struct LogField {
  enum class Kind { kInt, kUint, kDouble, kBool, kString };

  std::string_view key;
  Kind kind = Kind::kInt;
  std::int64_t int_value = 0;
  std::uint64_t uint_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string_view string_value;

  LogField(std::string_view k, int v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  LogField(std::string_view k, long v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  LogField(std::string_view k, long long v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  LogField(std::string_view k, unsigned v)
      : key(k), kind(Kind::kUint), uint_value(v) {}
  LogField(std::string_view k, unsigned long v)
      : key(k), kind(Kind::kUint), uint_value(v) {}
  LogField(std::string_view k, unsigned long long v)
      : key(k), kind(Kind::kUint), uint_value(v) {}
  LogField(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), double_value(v) {}
  LogField(std::string_view k, float v)
      : key(k), kind(Kind::kDouble), double_value(v) {}
  LogField(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), bool_value(v) {}
  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), string_value(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), string_value(v) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), kind(Kind::kString), string_value(v) {}
};

/// A fully captured record as handed to the sink. Views point into the
/// call site's storage; sinks must consume them synchronously.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  /// Wall-clock milliseconds since the Unix epoch (observability metadata
  /// only — never feeds any computation, so the no-wall-clock-entropy rule
  /// for the numeric code does not apply here).
  std::uint64_t unix_ms = 0;
  std::string_view message;
  const LogField* fields = nullptr;
  std::size_t field_count = 0;
};

/// Sink interface. write() may be called concurrently; implementations
/// serialize internally.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Human-readable lines: `<unix_ms> LEVEL message key=value ...`
/// (string values are quoted only when they contain spaces or '=').
class TextSink : public LogSink {
 public:
  explicit TextSink(std::ostream& os) : os_(&os) {}
  void write(const LogRecord& record) override;

 private:
  std::ostream* os_;
  std::mutex mu_;
};

/// JSON-lines: one object per record with "ts", "level", "msg" plus one
/// member per field. Always valid JSON (strings escaped, non-finite
/// numbers emitted as null).
class JsonLinesSink : public LogSink {
 public:
  explicit JsonLinesSink(std::ostream& os) : os_(&os) {}
  void write(const LogRecord& record) override;

 private:
  std::ostream* os_;
  std::mutex mu_;
};

/// Discards everything — the disabled-sink baseline for benchmarks.
class NullSink : public LogSink {
 public:
  void write(const LogRecord&) override {}
};

/// Runtime level control (relaxed atomic; safe from any thread).
void set_log_level(LogLevel level);
LogLevel log_level();
inline bool log_enabled(LogLevel level);

/// Replaces the process-wide sink (default: TextSink on std::clog).
/// Shared ownership so in-flight writes on other threads stay valid.
void set_log_sink(std::shared_ptr<LogSink> sink);
std::shared_ptr<LogSink> log_sink();

/// Formats and dispatches one record. Call through the macros so disabled
/// statements never evaluate their fields.
void log_emit(LogLevel level, std::string_view message,
              std::initializer_list<LogField> fields);

namespace detail {
/// The runtime level cell, exposed so log_enabled inlines to one load.
std::int32_t atomic_level_load();
}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<std::int32_t>(level) >= detail::atomic_level_load();
}

}  // namespace gansec::obs

/// Statements below this level are compiled out entirely (0 = trace keeps
/// everything; 2 would strip trace+debug from the binary).
#ifndef GANSEC_LOG_COMPILE_LEVEL
#define GANSEC_LOG_COMPILE_LEVEL 0
#endif

#define GANSEC_LOG_AT(lvl, msg, ...)                                      \
  do {                                                                    \
    if constexpr (static_cast<int>(lvl) >= GANSEC_LOG_COMPILE_LEVEL) {    \
      if (::gansec::obs::log_enabled(lvl)) {                              \
        ::gansec::obs::log_emit((lvl), (msg), {__VA_ARGS__});             \
      }                                                                   \
    }                                                                     \
  } while (0)

#define GANSEC_LOG_TRACE(...) \
  GANSEC_LOG_AT(::gansec::obs::LogLevel::kTrace, __VA_ARGS__)
#define GANSEC_LOG_DEBUG(...) \
  GANSEC_LOG_AT(::gansec::obs::LogLevel::kDebug, __VA_ARGS__)
#define GANSEC_LOG_INFO(...) \
  GANSEC_LOG_AT(::gansec::obs::LogLevel::kInfo, __VA_ARGS__)
#define GANSEC_LOG_WARN(...) \
  GANSEC_LOG_AT(::gansec::obs::LogLevel::kWarn, __VA_ARGS__)
#define GANSEC_LOG_ERROR(...) \
  GANSEC_LOG_AT(::gansec::obs::LogLevel::kError, __VA_ARGS__)
