// OpenMetrics text exposition for the metrics registry, plus the small
// parser that `gansec_top` and the round-trip tests use to read it back.
//
// Name mapping (documented in DESIGN.md "Live introspection"): the
// registry's dot-namespaced names (`gan.train.iterations`) become
// OpenMetrics names by replacing every character outside
// [a-zA-Z0-9_:] with '_' (`gan_train_iterations`); a leading digit gets
// a '_' prefix. Counters are suffixed `_total`; histograms expand to
// cumulative `_bucket{le="..."}` samples plus `_sum` and `_count`.
// Series have no OpenMetrics equivalent and are skipped — they remain
// visible through the JSON metrics artifact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gansec/obs/metrics.hpp"

namespace gansec::obs {

/// Registry name -> OpenMetrics metric name (see mapping above).
std::string openmetrics_name(std::string_view name);

/// Renders a registry snapshot as an OpenMetrics text exposition:
/// `# TYPE` lines, samples, and the mandatory terminal `# EOF\n`.
/// Families appear in registration order (counters, then gauges, then
/// histograms). Non-finite gauge values are emitted as OpenMetrics
/// `NaN` / `+Inf` / `-Inf` literals.
std::string render_openmetrics(const RegistrySnapshot& snapshot);

/// One parsed sample line: `name{labels} value`.
struct OpenMetricsSample {
  std::string name;  ///< full sample name (incl. _total/_bucket/... suffix)
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

/// One metric family: the `# TYPE` declaration plus its samples.
struct OpenMetricsFamily {
  std::string name;  ///< family name from the # TYPE line
  std::string type;  ///< "counter" | "gauge" | "histogram" | "unknown"
  std::vector<OpenMetricsSample> samples;
};

/// Parses an OpenMetrics text exposition. Validates enough to be a real
/// round-trip check: every sample line must parse (name, optional
/// well-formed label set, finite-or-special value), every sample must
/// belong to the most recent `# TYPE` family or start an implicit
/// "unknown" family, and the input must end with `# EOF`. Throws
/// gansec::ParseError with a line number on violation.
std::vector<OpenMetricsFamily> parse_openmetrics(std::string_view text);

/// Convenience for gansec_top: finds `sample_name` (exact sample name,
/// e.g. "proc_rss_bytes" or "gan_train_iterations_total") across all
/// families and returns its value, or `fallback` when absent.
double openmetrics_value(const std::vector<OpenMetricsFamily>& families,
                         std::string_view sample_name, double fallback = 0.0);

}  // namespace gansec::obs
