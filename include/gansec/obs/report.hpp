// Run reports: one schema-versioned JSON artifact per pipeline/CLI run.
//
// A RunReport makes a run self-describing and re-runnable: it snapshots
// the command and argv, every RNG seed, the resolved configuration, the
// build provenance (git SHA, build type, compiler, flags), host facts,
// wall-clock per pipeline phase (aggregated from the trace-span recorder),
// arbitrary result sections (e.g. Algorithm 3 likelihoods), and the final
// metrics-registry dump with p50/p95/p99 histogram summaries. The paper's
// Algorithm 3 numbers only mean something relative to the seed/config that
// produced them — the report pins both to the output.
//
// Companion facilities keep artifacts usable when runs do not end well:
//  * register_artifact_flush() arms a best-effort atexit + SIGINT/SIGTERM
//    flusher so a crashed run still leaves its metrics/trace files;
//  * ProgressReporter logs a one-line metrics snapshot every N seconds
//    during long trainings (`--progress` in the CLI).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gansec::obs {

/// Schema identifier embedded in every report ("schema" member). Bump the
/// suffix on breaking layout changes; gansec_benchdiff checks it.
inline constexpr const char* kRunReportSchema = "gansec.run_report.v1";

/// Build provenance captured at configure/compile time. `git_sha` is
/// "unknown" when the source tree was built outside a git checkout.
struct BuildInfo {
  std::string version;     ///< gansec::kVersionString
  std::string git_sha;     ///< short HEAD SHA at configure time
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string compiler;    ///< id + version
  std::string flags;       ///< effective optimization/arch flags
};

const BuildInfo& build_info();

/// Appends `{"version":...,"git_sha":...,...}` for `info` to `os` — shared
/// by run reports and bench artifacts so both carry identical provenance.
std::string build_info_json(const BuildInfo& info);

/// Host facts worth pinning to a performance number.
struct HostInfo {
  std::string hostname;
  std::string os;
  unsigned hardware_concurrency = 0;
};

HostInfo host_info();

class RunReport {
 public:
  /// `command` names the run (CLI subcommand, test harness, ...).
  explicit RunReport(std::string command);

  /// Records the raw argv (excluding argv[0]) for reproducibility.
  void set_argv(int argc, const char* const* argv);

  /// Resolved configuration entries, in insertion order.
  void add_config(std::string_view key, double value);
  void add_config(std::string_view key, std::int64_t value);
  void add_config(std::string_view key, std::uint64_t value);
  void add_config(std::string_view key, bool value);
  void add_config(std::string_view key, std::string_view value);

  /// Every RNG seed that fed the run, by role ("pipeline", "dataset", ...).
  void add_seed(std::string_view name, std::uint64_t seed);

  /// Scalar result ("likelihood.margin", ...) or a pre-rendered JSON value
  /// (must be one complete RFC 8259 value — validated at write time).
  void add_result(std::string_view key, double value);
  void add_result_json(std::string_view key, std::string json_value);

  /// Aggregates the trace recorder's span events into per-phase wall-clock
  /// totals: one entry per distinct span name with {count, total_ms,
  /// mean_ms}. Requires tracing to have been enabled for the run (the CLI
  /// turns it on whenever --report-out is given); without events the
  /// "phases" section is simply empty.
  void capture_phases_from_trace();

  /// Embeds the full metrics-registry snapshot (histograms carry
  /// mean/p50/p95/p99 summaries).
  void capture_metrics();

  /// One complete JSON object (ends without a newline); always valid.
  std::string to_json() const;

  /// to_json() + newline written to `path`; throws IoError on failure.
  void write_file(const std::string& path) const;

 private:
  struct ConfigEntry {
    std::string key;
    std::string json_value;  ///< pre-rendered token/value
  };
  struct PhaseEntry {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
  };

  std::string command_;
  std::vector<std::string> argv_;
  std::vector<ConfigEntry> config_;
  std::vector<std::pair<std::string, std::uint64_t>> seeds_;
  std::vector<ConfigEntry> results_;
  std::vector<PhaseEntry> phases_;
  std::string metrics_json_;  ///< empty until capture_metrics()
};

/// Artifact paths the process should still write if it exits abnormally.
/// Empty members are skipped. register_artifact_flush() installs (once)
/// a std::atexit hook plus SIGINT/SIGTERM handlers that write the trace
/// and metrics files and flush the log streams, unless
/// mark_artifacts_flushed() ran first (the normal-exit path). The signal
/// path is best-effort by design: writing JSON is not async-signal-safe,
/// but a mostly-written artifact from a dying run beats an empty one.
struct ArtifactPaths {
  std::string trace_path;
  std::string metrics_path;
};

void register_artifact_flush(ArtifactPaths paths);
void mark_artifacts_flushed();

/// Installs SIGSEGV/SIGABRT/SIGFPE/SIGBUS handlers that claim the
/// artifact flush (so the non-signal-safe JSON writers stay out of a
/// corrupt process), write the async-signal-safe incident bundle via
/// obs::incident::signal_dump(), and re-raise with the default
/// disposition. Only dispositions still at SIG_DFL are taken over —
/// sanitizer runtimes and debuggers keep theirs. Idempotent; call
/// obs::incident::arm() first or the dump is a no-op.
void register_fatal_signal_dump();

/// Atomically claims the one permitted flush (an exchange on the once
/// flag). Returns true exactly once per register_artifact_flush() cycle;
/// the winner is responsible for writing the artifacts. This is what
/// makes signal-then-exit (and exit-then-signal) single-flush: the
/// normal-exit writer and the signal/atexit path race on this claim, and
/// the loser does nothing.
bool claim_artifact_flush();

/// Forces the registered artifacts out immediately (no-op when nothing is
/// registered or the flush was already claimed). Returns true if files
/// were written. Exposed for the exit-flush tests; the handlers call this.
bool flush_artifacts_now();

/// Background interval logger for long trainings: every `interval_s`
/// seconds emits one GANSEC_LOG_INFO("progress", ...) line with the
/// training iteration count, iterations/s and samples/s since the last
/// tick, and the p50 of the D/G loss histograms. Reads metrics only —
/// never perturbs any computation. The thread stops in the destructor.
class ProgressReporter {
 public:
  explicit ProgressReporter(double interval_s);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace gansec::obs
