// Conditional GAN model (paper Section I-B / Figure 2).
//
// The generator maps [noise Z | condition F2] -> synthetic F1 samples in
// [0,1]^data_dim; the discriminator maps [F1 | F2] -> probability that the
// sample came from the training data. Together they estimate Pr(F1 | F2),
// the cross-domain conditional distribution GAN-Sec's security analysis is
// built on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gansec/math/matrix.hpp"
#include "gansec/math/rng.hpp"
#include "gansec/nn/mlp.hpp"

namespace gansec::gan {

/// Network shape hyperparameters.
struct CganTopology {
  std::size_t data_dim = 0;   ///< dimension of F1 (e.g. 100 frequency bins)
  std::size_t cond_dim = 0;   ///< dimension of F2 (e.g. 3 one-hot motors)
  std::size_t noise_dim = 16; ///< dimension of the noise prior Z
  std::vector<std::size_t> generator_hidden = {128, 128};
  std::vector<std::size_t> discriminator_hidden = {128, 128};
  float leaky_slope = 0.2F;        ///< LeakyReLU slope in both networks
  float discriminator_dropout = 0.0F;
  /// Insert batch normalization after each generator hidden layer (a
  /// standard GAN stabilizer; never applied to the discriminator).
  bool generator_batchnorm = false;
};

class Cgan {
 public:
  /// Builds and initializes both networks from the topology. All weight
  /// randomness derives from `seed`.
  Cgan(CganTopology topology, std::uint64_t seed = 0xC6A2);

  /// Reconstructs a Cgan around externally loaded networks (deserialization
  /// path). Network shapes must match the topology.
  Cgan(CganTopology topology, nn::Mlp generator, nn::Mlp discriminator);

  const CganTopology& topology() const { return topology_; }

  nn::Mlp& generator() { return generator_; }
  nn::Mlp& discriminator() { return discriminator_; }
  const nn::Mlp& generator() const { return generator_; }
  const nn::Mlp& discriminator() const { return discriminator_; }

  /// Draws an n x noise_dim standard-normal noise batch.
  math::Matrix sample_noise(std::size_t n, math::Rng& rng) const;

  /// G(Z|conds): one generated sample per condition row.
  math::Matrix generate(const math::Matrix& conditions, math::Rng& rng);

  /// G(Z|cond): `count` samples for a single 1 x cond_dim condition.
  math::Matrix generate_for_condition(const math::Matrix& condition,
                                      std::size_t count, math::Rng& rng);

  /// Zero-copy variants: identical draws and values, but the returned
  /// reference is the generator's own output buffer — valid until the next
  /// generator forward pass. Scratch comes from the calling thread's
  /// Workspace, so steady-state calls allocate nothing.
  const math::Matrix& generate_view(const math::Matrix& conditions,
                                    math::Rng& rng);
  const math::Matrix& generate_for_condition_view(
      const math::Matrix& condition, std::size_t count, math::Rng& rng);

  /// D(data|conds): per-row probability that each sample is real.
  math::Matrix discriminate(const math::Matrix& data,
                            const math::Matrix& conditions);

  /// Persists topology + both networks.
  void save(std::ostream& os) const;
  static Cgan load(std::istream& is);
  void save_file(const std::string& path) const;
  static Cgan load_file(const std::string& path);

 private:
  void validate_conditions(const math::Matrix& conditions,
                           const char* fn) const;

  CganTopology topology_;
  nn::Mlp generator_;
  nn::Mlp discriminator_;
};

/// Builds the generator network for a topology (exposed for tests).
nn::Mlp build_generator(const CganTopology& topology);

/// Builds the discriminator network for a topology (exposed for tests).
nn::Mlp build_discriminator(const CganTopology& topology);

}  // namespace gansec::gan
