// CGAN training loop — a faithful implementation of Algorithm 2
// ("CGAN Model Generation and Storage") from the paper.
//
// Per outer iteration the trainer performs k discriminator updates
// (stochastic gradient *ascent* on log D(f1|f2) + log(1 - D(G(z|f2)))) and
// one generator update. The generator objective defaults to the paper's
// original minimax form, descending log(1 - D(G(z|f2))); the non-saturating
// alternative (-log D(G(z|f2))) from Goodfellow et al. is available for
// tougher optimization landscapes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gansec/gan/cgan.hpp"
#include "gansec/nn/optimizer.hpp"
#include "gansec/obs/metrics.hpp"

namespace gansec::gan {

enum class OptimizerKind { kSgd, kMomentum, kAdam };
enum class GeneratorLoss { kOriginalMinimax, kNonSaturating };

/// Adversarial objective family. kBinaryCrossEntropy is the paper's (and
/// Goodfellow et al.'s) log-loss game; kLeastSquares is the LSGAN variant
/// (Mao et al. 2017), which penalizes confidently-wrong discriminator
/// outputs quadratically and often trains more stably.
enum class AdversarialObjective { kBinaryCrossEntropy, kLeastSquares };

struct TrainConfig {
  std::size_t batch_size = 32;        ///< n in Algorithm 2
  std::size_t discriminator_steps = 1;///< k in Algorithm 2
  std::size_t iterations = 2000;      ///< Iter in Algorithm 2
  float learning_rate_g = 1e-3F;
  float learning_rate_d = 5e-4F;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  /// Generator update rule under the BCE objective (ignored for LSGAN).
  GeneratorLoss generator_loss = GeneratorLoss::kNonSaturating;
  AdversarialObjective objective =
      AdversarialObjective::kBinaryCrossEntropy;
  /// Adam beta1; 0.5 is the standard GAN setting (Radford et al.).
  float adam_beta1 = 0.5F;
  /// One-sided label smoothing: the discriminator's target for real
  /// samples (1.0 disables smoothing). Keeps D from saturating.
  float real_label = 0.9F;
  /// Snapshot the generator every N iterations (0 = never). Snapshots feed
  /// the Figure 9 convergence experiment.
  std::size_t checkpoint_every = 0;
  /// Observability scope: the trainer appends per-iteration losses to the
  /// series `<metrics_scope>.g_loss` / `<metrics_scope>.d_loss`. Give each
  /// concurrent trainer its own scope (run_flow_pairs derives
  /// "gan.train.pair<p>") so series stay per-producer and appends never
  /// contend. The shared distribution histograms (gan.train.*) are always
  /// global and merge safely across trainers.
  std::string metrics_scope = "gan.train";
};

/// One row of the Figure 7 training curve.
struct TrainRecord {
  std::size_t iteration = 0;
  /// Reported generator loss: -mean log D(G(z|c)) (standard reporting form,
  /// high when D rejects fakes, falls toward ln 2 at equilibrium).
  double g_loss = 0.0;
  /// Discriminator loss: BCE(real,1) + BCE(fake,0); low when D separates
  /// easily, rising toward 2 ln 2 as G catches up.
  double d_loss = 0.0;
  /// Mean D output on real and generated samples this iteration.
  double d_real_mean = 0.0;
  double d_fake_mean = 0.0;
};

/// A generator snapshot taken mid-training.
struct Checkpoint {
  std::size_t iteration = 0;
  nn::Mlp generator;
};

class CganTrainer {
 public:
  /// The trainer borrows the model; it must outlive the trainer.
  CganTrainer(Cgan& model, TrainConfig config, std::uint64_t seed = 0x7124);

  /// Runs the full config.iterations loop on the labeled dataset
  /// (samples: N x data_dim, conditions: N x cond_dim, row-aligned).
  void train(const math::Matrix& samples, const math::Matrix& conditions);

  /// Runs `count` additional iterations; callers may interleave their own
  /// evaluation between calls (used by the Figure 9 harness).
  void train_iterations(const math::Matrix& samples,
                        const math::Matrix& conditions, std::size_t count);

  const std::vector<TrainRecord>& history() const { return history_; }
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }
  std::size_t iterations_done() const { return iterations_done_; }
  const TrainConfig& config() const { return config_; }

  /// The borrowed model (generator + discriminator weights).
  Cgan& model() { return model_; }
  const Cgan& model() const { return model_; }

  /// Mutable training state, exposed for exact-resume checkpointing
  /// (model::save_trainer_checkpoint / restore_trainer_state): the
  /// minibatch/noise RNG cursor, both optimizers' internal moments, and
  /// the iteration counter. Restoring all of them makes a resumed run
  /// bit-identical to an uninterrupted one.
  math::Rng& rng() { return rng_; }
  const math::Rng& rng() const { return rng_; }
  nn::Optimizer& optimizer_g() { return *opt_g_; }
  const nn::Optimizer& optimizer_g() const { return *opt_g_; }
  nn::Optimizer& optimizer_d() { return *opt_d_; }
  const nn::Optimizer& optimizer_d() const { return *opt_d_; }
  void set_iterations_done(std::size_t n) { iterations_done_ = n; }

 private:
  void validate_dataset(const math::Matrix& samples,
                        const math::Matrix& conditions) const;
  std::unique_ptr<nn::Optimizer> make_optimizer(
      std::vector<nn::Parameter*> params, float lr) const;
  /// One discriminator update; returns (loss, mean D(real), mean D(fake)).
  void discriminator_step(const math::Matrix& samples,
                          const math::Matrix& conditions,
                          TrainRecord& record);
  /// One generator update; fills record.g_loss.
  void generator_step(const math::Matrix& last_conditions,
                      TrainRecord& record);

  Cgan& model_;
  TrainConfig config_;
  /// Cached observability handles (registry-owned, process lifetime).
  obs::Series* series_g_loss_ = nullptr;
  obs::Series* series_d_loss_ = nullptr;
  math::Rng rng_;
  std::unique_ptr<nn::Optimizer> opt_g_;
  std::unique_ptr<nn::Optimizer> opt_d_;
  std::vector<TrainRecord> history_;
  std::vector<Checkpoint> checkpoints_;
  std::size_t iterations_done_ = 0;
  /// Conditions of the most recent minibatch, copied out of workspace
  /// scratch because the generator step runs after the discriminator
  /// step's scope has closed. Capacity is reused across iterations.
  math::Matrix last_batch_conditions_;
  /// Minibatch index scratch, reused across iterations.
  std::vector<std::size_t> idx_;
};

}  // namespace gansec::gan
