// Likelihood-threshold attack detector built on the trained CGAN.
//
// The defender knows the commanded condition (cyber domain) and observes
// the emission (physical domain). The detector scores the observation
// against the CGAN's conditional distribution for the *expected* condition:
// benign observations score high, attacked ones (wrong motor, stalled
// motor) score low. An alarm fires when the score drops below a threshold
// calibrated on benign data.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/gan/cgan.hpp"
#include "gansec/security/attacks.hpp"
#include "gansec/stats/kde.hpp"
#include "gansec/stats/metrics.hpp"

namespace gansec::security {

struct DetectorConfig {
  std::size_t generator_samples = 200;
  /// Detection bandwidth. Much narrower than the h values the paper sweeps
  /// in Table I: features are min-max scaled to [0,1], so a width of 0.2
  /// blurs over a fifth of the domain and hides anomalies, while ~0.02
  /// keeps the conditional distribution sharp enough to flag them.
  double parzen_h = 0.02;
  /// Feature indices used for scoring; empty = all features.
  std::vector<std::size_t> feature_indices;
  /// Benign-score percentile used as the alarm threshold during calibrate()
  /// (e.g. 5.0 => ~5% benign false-alarm rate).
  double false_alarm_percentile = 5.0;
};

struct DetectionReport {
  double accuracy = 0.0;         ///< fraction of observations classified right
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
  double auc = 0.0;              ///< threshold-free separability
  std::size_t attacked = 0;
  std::size_t benign = 0;
};

class ScoringModel;  // stream_detector.hpp: the shareable Parzen model

class AttackDetector {
 public:
  /// Builds the per-(condition, feature) Parzen scoring model from the
  /// trained generator (sampling happens here; the CGAN reference is not
  /// retained afterwards).
  AttackDetector(gan::Cgan& model, DetectorConfig config,
                 std::uint64_t seed = 0xDE7EC7);

  /// Mean per-feature log-likelihood of the observation under its expected
  /// condition (higher = more plausibly benign). The log form is the right
  /// detection statistic: a feature where the observation falls far outside
  /// the learned conditional distribution contributes a large negative
  /// term instead of saturating at zero. Per-feature terms are floored at
  /// `kLogFloor` so a single wild feature cannot dominate calibration.
  double score(const math::Matrix& features,
               std::size_t expected_label) const;

  /// Floor for per-feature log-likelihood contributions.
  static constexpr double kLogFloor = -50.0;

  /// Learns the alarm threshold from benign observations.
  void calibrate(const std::vector<Observation>& benign);

  double threshold() const;
  bool calibrated() const { return calibrated_; }

  /// True when the observation is flagged as an attack.
  bool is_attack(const math::Matrix& features,
                 std::size_t expected_label) const;

  /// Scores a mixed benign/attacked set and reports detection quality.
  DetectionReport evaluate(const std::vector<Observation>& observations) const;

  /// The underlying immutable scoring model — shared with streaming
  /// detectors (security::StreamDetector) so batch and online paths score
  /// through the very same estimators.
  std::shared_ptr<const ScoringModel> scoring_model() const { return model_; }

 private:
  std::shared_ptr<const ScoringModel> model_;
  double threshold_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace gansec::security
