// Confidentiality (side-channel leakage) analysis.
//
// Answers the paper's motivating question "Is data in F1 (cyber domain)
// being leaked from F9 (physical domain)?" two ways:
//
//   1. an attacker classifier: predict the G-code condition from an
//      observed emission by maximum CGAN likelihood — its accuracy above
//      chance quantifies the breach;
//   2. mutual information between the condition and each frequency
//      feature of the *measured* emissions — the model-free ceiling.
#pragma once

#include <cstdint>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/gan/cgan.hpp"
#include "gansec/stats/metrics.hpp"

namespace gansec::security {

struct ConfidentialityConfig {
  std::size_t generator_samples = 200;
  double parzen_h = 0.2;
  /// Features used by the attacker classifier; empty = all.
  std::vector<std::size_t> feature_indices;
  /// Histogram bins for the mutual-information estimate.
  std::size_t mi_bins = 24;
};

struct ConfidentialityReport {
  /// Attacker's condition-inference accuracy (chance = 1 / n_conditions).
  double attacker_accuracy = 0.0;
  std::size_t condition_count = 0;
  /// Per-condition recall of the attacker classifier.
  std::vector<double> per_condition_recall;
  /// Mutual information (nats) between condition and each feature.
  std::vector<double> mi_per_feature;
  double mean_mi = 0.0;
  double max_mi = 0.0;
  std::size_t max_mi_feature = 0;

  /// True when the attacker beats chance by `margin` (default 1.5x).
  bool leaks(double margin = 1.5) const {
    return attacker_accuracy >
           margin / static_cast<double>(condition_count);
  }
};

class ConfidentialityAnalyzer {
 public:
  explicit ConfidentialityAnalyzer(ConfidentialityConfig config = {},
                                   std::uint64_t seed = 0xC0F1DE);

  /// Per-row most-likely condition under the CGAN (attacker inference).
  std::vector<std::size_t> infer_conditions(
      gan::Cgan& model, const math::Matrix& features) const;

  ConfidentialityReport analyze(gan::Cgan& model,
                                const am::LabeledDataset& test) const;

 private:
  ConfidentialityConfig config_;
  std::uint64_t seed_;
};

}  // namespace gansec::security
