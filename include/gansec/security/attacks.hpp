// Cross-domain attack injection on the simulated printer.
//
// Section IV-D of the paper argues the CGAN model lets a designer estimate
// the performance of integrity/availability attack detectors built on the
// same side channel. This module synthesizes attacked observations:
//
//   * integrity attack — the executed G-code differs from the commanded
//     G-code (a kinetic-cyber tamper): the emission comes from a different
//     motor than the defender expects;
//   * availability attack — a motor is jammed/stalled so the commanded
//     move produces only background emission;
//   * degradation attack — subtle physical tampering (worn bearing,
//     loosened mount) shifts the motor's frame resonance; the commanded
//     move still happens but sounds slightly wrong.
#pragma once

#include <cstdint>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/math/matrix.hpp"

namespace gansec::security {

enum class AttackKind { kNone, kIntegrity, kAvailability, kDegradation };

inline const char* attack_name(AttackKind k) {
  switch (k) {
    case AttackKind::kNone:
      return "benign";
    case AttackKind::kIntegrity:
      return "integrity";
    case AttackKind::kAvailability:
      return "availability";
    case AttackKind::kDegradation:
      return "degradation";
  }
  return "unknown";
}

/// One defender-side observation: the condition the cyber domain *expects*
/// plus the physically observed (scaled) spectrum.
struct Observation {
  std::size_t expected_label = 0;
  math::Matrix features;  ///< 1 x data_dim, scaled with the training scaler
  AttackKind attack = AttackKind::kNone;
};

class AttackInjector {
 public:
  /// The builder provides the feature pipeline (binner + fitted scaler) and
  /// the machine/acoustic configuration; build() must have been called on
  /// it already.
  AttackInjector(const am::DatasetBuilder& builder,
                 std::uint64_t seed = 0xA77AC8);

  /// `per_label` observations per XYZ class; each is attacked with
  /// probability `attack_fraction` using `kind`.
  std::vector<Observation> generate(std::size_t per_label,
                                    double attack_fraction, AttackKind kind);

  /// A single observation, attacked or benign.
  Observation make_observation(std::size_t expected_label, AttackKind kind);

  /// Relative shift applied to the attacked motor's resonance frequency in
  /// degradation attacks (0.15 = 15% detuning).
  static constexpr double kDegradationResonanceShift = 0.15;

 private:
  const am::DatasetBuilder& builder_;
  am::AcousticSimulator acoustics_;
  math::Rng rng_;
};

}  // namespace gansec::security
