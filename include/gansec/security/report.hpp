// Text report formatting for the experiment harnesses.
#pragma once

#include <string>
#include <vector>

#include "gansec/gan/trainer.hpp"
#include "gansec/security/analyzer.hpp"
#include "gansec/security/confidentiality.hpp"
#include "gansec/security/detector.hpp"

namespace gansec::security {

/// Table I layout: one row per condition, Cor/Inc columns per Parzen width.
/// `results[k]` must be the Algorithm 3 output for `widths[k]`, and
/// likelihoods are averaged across the analyzed features.
std::string format_table1(const std::vector<double>& widths,
                          const std::vector<LikelihoodResult>& results);

/// Figure 7 series: iteration, G loss, D loss (TSV with header).
std::string format_training_curve(const std::vector<gan::TrainRecord>& history,
                                  std::size_t stride = 1);

/// Per-condition summary of one Algorithm 3 run.
std::string format_likelihood_summary(const LikelihoodResult& result);

/// One complete JSON value for a run report's "results" section:
/// per-condition mean correct/incorrect likelihoods and margins, the
/// analyzed feature indices, and the most-leaky condition index.
std::string likelihood_to_json(const LikelihoodResult& result);

std::string format_confidentiality(const ConfidentialityReport& report);

std::string format_detection(const DetectionReport& report);

}  // namespace gansec::security
