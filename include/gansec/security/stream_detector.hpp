// Streaming form of the Algorithm 3 detector: an immutable, shareable
// scoring model plus a per-stream verdict state machine.
//
// The batch AttackDetector scores a held-out table once; the online
// monitor scores an unbounded sequence of windows per machine stream. The
// split here makes that safe and cheap:
//
//   * ScoringModel holds the per-(condition, feature) Parzen estimators
//     sampled from the trained generator. It is immutable after
//     construction and scored through const methods only, so one model is
//     shared by every stream and hot-swapped atomically (swap the
//     shared_ptr between windows; in-flight windows finish on the old
//     model).
//   * StreamDetector is the per-stream state machine: it owns nothing but
//     a reference to the current model, a calibrated threshold and the
//     consecutive-anomaly run length, and emits one integrity /
//     availability verdict per window. Scores are bit-identical to
//     AttackDetector::score on the same feature rows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gansec/gan/cgan.hpp"
#include "gansec/security/detector.hpp"
#include "gansec/stats/kde.hpp"

namespace gansec::security {

/// Immutable per-(condition, feature) Parzen scoring model sampled from a
/// trained CGAN generator. Construction replays the exact sampling
/// sequence of the batch AttackDetector (same RNG stream, same order), so
/// both paths score identically.
class ScoringModel {
 public:
  ScoringModel(gan::Cgan& model, DetectorConfig config,
               std::uint64_t seed = 0xDE7EC7);

  /// Floor for per-feature log-likelihood contributions (matches
  /// AttackDetector::kLogFloor).
  static constexpr double kLogFloor = -50.0;

  /// Mean floored per-feature log-likelihood of a scaled feature row under
  /// the expected condition. `count` must equal data_dim(). No allocation.
  double score(const float* features, std::size_t count,
               std::size_t expected_label) const;

  /// Matrix-row form used by the batch detector (same values as score()).
  double score_row(const math::Matrix& features,
                   std::size_t expected_label) const;

  std::size_t condition_count() const { return conditions_; }
  std::size_t data_dim() const { return data_dim_; }
  const std::vector<std::size_t>& feature_indices() const { return indices_; }
  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  std::size_t conditions_ = 0;
  std::size_t data_dim_ = 0;
  std::vector<std::size_t> indices_;
  /// Flat [condition][feature-pos][generator_samples] sample store; the
  /// scorers below are non-owning views into it.
  std::vector<double> samples_;
  std::vector<stats::ParzenScorer> scorers_;  ///< [condition * feature-pos]
};

/// Per-window classification emitted by a stream.
enum class StreamVerdict : std::uint8_t {
  kBenign = 0,
  /// Score below threshold with normal emission energy: the observed
  /// spectrum contradicts the commanded condition (wrong motor running).
  kIntegrity = 1,
  /// Score below threshold with near-silent emission: the commanded motor
  /// is not running at all (stalled / halted).
  kAvailability = 2,
};

const char* stream_verdict_name(StreamVerdict verdict);

struct StreamDetectorConfig {
  /// Alarm threshold: a window is anomalous when score < threshold
  /// (calibrate like AttackDetector: a low percentile of benign scores).
  double threshold = 0.0;
  /// Mean scaled feature level below which an anomalous window is
  /// classified as an availability attack instead of an integrity attack.
  /// Features are min-max scaled to [0,1]; a silent emission sits near the
  /// per-bin training minima, so its mean is close to zero.
  double availability_floor = 0.05;
  /// Windows that must score anomalous in a row before a verdict fires
  /// (1 = alarm on every anomalous window, matching the batch detector).
  std::size_t consecutive_to_alarm = 1;
};

/// One scored window. `score` is bit-identical to the batch
/// AttackDetector::score on the same feature row.
struct WindowVerdict {
  std::uint64_t sequence = 0;     ///< windows seen by this stream so far - 1
  double score = 0.0;             ///< mean floored log-likelihood
  double mean_feature = 0.0;      ///< mean scaled feature (emission level)
  StreamVerdict verdict = StreamVerdict::kBenign;
};

/// Reentrant per-stream detector state machine. Not thread-safe: each
/// stream is scored by exactly one worker at a time (the service shards
/// streams over workers and keeps every window of a stream on its shard,
/// which is also what makes verdict sequences worker-count-invariant).
class StreamDetector {
 public:
  StreamDetector(std::shared_ptr<const ScoringModel> model,
                 StreamDetectorConfig config);

  /// Scores one window and advances the state machine. `count` must equal
  /// the model's data_dim(). Zero allocation.
  WindowVerdict score_window(const float* features, std::size_t count,
                             std::size_t expected_label);

  /// Installs a new scoring model between windows (hot swap). The model
  /// must have the same data_dim and condition count; threshold and the
  /// anomaly run survive the swap.
  void swap_model(std::shared_ptr<const ScoringModel> model);

  const ScoringModel& model() const { return *model_; }
  const StreamDetectorConfig& config() const { return config_; }
  std::uint64_t windows() const { return windows_; }
  /// Length of the current consecutive-anomaly run.
  std::uint64_t anomaly_run() const { return anomaly_run_; }

  /// Clears the per-stream state (window count, anomaly run).
  void reset();

 private:
  std::shared_ptr<const ScoringModel> model_;
  StreamDetectorConfig config_;
  std::uint64_t windows_ = 0;
  std::uint64_t anomaly_run_ = 0;
};

}  // namespace gansec::security
