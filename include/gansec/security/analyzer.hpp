// Algorithm 3 — the security analysis methodology.
//
// For every condition label C_i and frequency-feature index FtIdx, draw
// GSize samples from the trained generator G(Z|C_i), fit a Parzen
// Gaussian-window KDE to that feature, score every test sample, scale by h
// (Like = exp(LogLike) * h), and average separately over test samples whose
// true label matches C_i (AvgCorLike) and those whose label differs
// (AvgIncLike). High correct likelihood ==> the emission leaks the
// condition (confidentiality risk) and, dually, deviations are detectable
// (integrity/availability monitoring).
#pragma once

#include <cstdint>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/gan/cgan.hpp"
#include "gansec/math/rng.hpp"

namespace gansec::security {

struct LikelihoodConfig {
  std::size_t generator_samples = 200;  ///< GSize in Algorithm 3
  double parzen_h = 0.2;                ///< Parzen window width h
  /// Feature indices to analyze (FtIndices); empty means every feature.
  std::vector<std::size_t> feature_indices;
};

/// AvgCorLike / AvgIncLike matrices of Algorithm 3, indexed
/// [condition][feature-position] (positions follow `feature_indices`).
struct LikelihoodResult {
  std::vector<std::size_t> feature_indices;
  std::vector<std::vector<double>> avg_correct;
  std::vector<std::vector<double>> avg_incorrect;

  std::size_t condition_count() const { return avg_correct.size(); }

  /// Mean over features of AvgCorLike for one condition.
  double mean_correct(std::size_t condition) const;
  double mean_incorrect(std::size_t condition) const;

  /// Condition an attacker can estimate best: the one with the largest
  /// correct-minus-incorrect margin (Table I: Cond3/Z — its incorrect
  /// likelihood is near zero, so observing a Z emission is unambiguous).
  std::size_t most_leaky_condition() const;
};

/// Runs Algorithm 3. The per-feature KDE fits and test-sample scoring fan
/// out across the process-wide thread pool (each of the 100 frequency bins
/// is independent); all generator sampling happens serially first, so the
/// resulting likelihoods are bit-identical at any thread count.
class LikelihoodAnalyzer {
 public:
  explicit LikelihoodAnalyzer(LikelihoodConfig config,
                              std::uint64_t seed = 0xA19003);

  const LikelihoodConfig& config() const { return config_; }

  /// Runs Algorithm 3 against a trained model on a held-out test set.
  LikelihoodResult analyze(gan::Cgan& model,
                           const am::LabeledDataset& test) const;

  /// Same, but with a standalone generator network (used for mid-training
  /// checkpoints in the Figure 9 experiment).
  LikelihoodResult analyze_generator(nn::Mlp& generator,
                                     const gan::CganTopology& topology,
                                     const am::LabeledDataset& test) const;

 private:
  LikelihoodConfig config_;
  std::uint64_t seed_;
};

}  // namespace gansec::security
