// Minimal command-line flag parser for the gansec tools.
//
// Supports `--name value` and `--name=value` long flags, presence-only
// boolean flags, and positional arguments. Unknown flags raise
// InvalidArgumentError so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace gansec::core {

class Args {
 public:
  /// Parses argv (excluding argv[0]). `known_flags` is the allowlist of
  /// long-flag names (without the leading "--"). Flags also listed in
  /// `bool_flags` consume no value: bare `--flag` stores "true", while the
  /// explicit forms `--flag=true` / `--flag=false` still work.
  Args(int argc, const char* const* argv,
       const std::set<std::string>& known_flags,
       const std::set<std::string>& bool_flags = {});

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& flag) const { return values_.contains(flag); }

  /// String value or fallback.
  std::string get(const std::string& flag,
                  const std::string& fallback) const;

  /// Numeric accessors; throw InvalidArgumentError on malformed numbers.
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;

  /// Boolean accessor: absent -> fallback, "true"/"1" -> true,
  /// "false"/"0" -> false, anything else throws InvalidArgumentError.
  bool get_bool(const std::string& flag, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gansec::core
