// Process-wide execution configuration for gansec's parallel kernels.
//
// Every parallel code path (GEMM row blocking, Algorithm 3 feature scoring,
// the flow-pair training sweep) dispatches through core::parallel_for,
// which consults one global ExecutionConfig and one lazily created global
// ThreadPool. The determinism contract (see DESIGN.md "Parallel
// execution"): all shipped kernels write disjoint output ranges and keep
// per-element accumulation order fixed, so results are bit-identical across
// thread counts; `deterministic` additionally pins the chunk layout to the
// caller-supplied grain so chunk-indexed reductions in user code stay
// reproducible too.
#pragma once

#include <cstddef>

#include "gansec/core/thread_pool.hpp"

namespace gansec::core {

/// Hard ceiling on resolved parallelism; requests above it clamp silently.
/// Results are thread-count-invariant, so clamping never changes output.
inline constexpr std::size_t kMaxThreads = 256;

struct ExecutionConfig {
  /// Desired total parallelism (workers + calling thread), clamped to
  /// kMaxThreads. 0 = use std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Run every parallel_for inline on the caller (debugging / baselines).
  bool force_serial = false;
  /// Pin chunk boundaries to the caller's grain regardless of thread
  /// count. When false, grains may be coarsened for lower scheduling
  /// overhead (chunk layout then depends on the thread count).
  bool deterministic = true;
};

/// Snapshot of the current global configuration.
ExecutionConfig execution();

/// Installs `config` globally and resizes the pool if the thread count
/// changed. Not safe to call while parallel work is in flight.
void set_execution(const ExecutionConfig& config);

/// `config.threads` with 0 resolved to hardware concurrency (minimum 1);
/// force_serial resolves to 1; anything above kMaxThreads clamps to it.
std::size_t resolved_threads(const ExecutionConfig& config);

/// The process-wide pool, created on first use with resolved_threads() - 1
/// workers (the caller is the final lane).
ThreadPool& global_pool();

/// Runs `body` over [begin, end) honoring the global ExecutionConfig:
/// serial when forced, when the range is at most one grain, when only one
/// thread is configured, or when already inside a pool worker.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const ThreadPool::ChunkFn& body);

/// RAII: installs a configuration and restores the previous one on exit.
/// Used by PipelineConfig::execution, benchmarks and tests.
class ScopedExecution {
 public:
  explicit ScopedExecution(const ExecutionConfig& config);
  ~ScopedExecution();

  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

 private:
  ExecutionConfig previous_;
};

}  // namespace gansec::core
