// GanSecPipeline — the end-to-end GAN-Sec methodology on the additive
// manufacturing case study.
//
// One call to run() executes the whole paper:
//   1. build the printer architecture and run Algorithm 1 (graph + flow
//      pairs, pruned by historical-data coverage, cross-domain selection);
//   2. generate the labeled (condition, spectrum) dataset on the simulated
//      testbed and split train/test;
//   3. train the CGAN with Algorithm 2;
//   4. run Algorithm 3 and the confidentiality analysis on held-out data.
#pragma once

#include <cstdint>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/am/printer_arch.hpp"
#include "gansec/cpps/algorithm1.hpp"
#include "gansec/gan/trainer.hpp"
#include "gansec/security/analyzer.hpp"
#include "gansec/security/confidentiality.hpp"

namespace gansec::core {

struct PipelineConfig {
  am::DatasetConfig dataset;
  gan::TrainConfig train;
  security::LikelihoodConfig likelihood;
  security::ConfidentialityConfig confidentiality;
  double train_fraction = 0.7;
  std::size_t noise_dim = 16;
  std::vector<std::size_t> generator_hidden = {128, 128};
  std::vector<std::size_t> discriminator_hidden = {128, 128};
  bool generator_batchnorm = false;
  std::uint64_t seed = 0x6A5EC;
};

struct PipelineResult {
  cpps::Architecture architecture;
  /// Flow ids removed by Algorithm 1's feedback-loop elimination.
  std::vector<std::string> removed_feedback_flows;
  /// FP_T restricted to cross-domain pairs (the paper's experiment).
  std::vector<cpps::FlowPair> flow_pairs;
  am::LabeledDataset train_set;
  am::LabeledDataset test_set;
  gan::Cgan model;
  std::vector<gan::TrainRecord> history;
  security::LikelihoodResult likelihood;
  security::ConfidentialityReport confidentiality;
};

class GanSecPipeline {
 public:
  explicit GanSecPipeline(PipelineConfig config = PipelineConfig{});

  const PipelineConfig& config() const { return config_; }

  /// The dataset builder (valid after construction; its scaler is fitted by
  /// run()). Exposed so attack-detection harnesses can reuse the feature
  /// pipeline.
  const am::DatasetBuilder& builder() const { return builder_; }

  /// Executes steps 1-4 and returns everything the experiments need.
  PipelineResult run();

  /// Suggested CGAN topology for this configuration.
  gan::CganTopology topology() const;

 private:
  PipelineConfig config_;
  am::DatasetBuilder builder_;
};

}  // namespace gansec::core
