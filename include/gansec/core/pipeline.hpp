// GanSecPipeline — the end-to-end GAN-Sec methodology on the additive
// manufacturing case study.
//
// One call to run() executes the whole paper:
//   1. build the printer architecture and run Algorithm 1 (graph + flow
//      pairs, pruned by historical-data coverage, cross-domain selection);
//   2. generate the labeled (condition, spectrum) dataset on the simulated
//      testbed and split train/test;
//   3. train the CGAN with Algorithm 2;
//   4. run Algorithm 3 and the confidentiality analysis on held-out data.
#pragma once

#include <cstdint>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/am/printer_arch.hpp"
#include "gansec/core/execution.hpp"
#include "gansec/cpps/algorithm1.hpp"
#include "gansec/gan/trainer.hpp"
#include "gansec/model/registry.hpp"
#include "gansec/obs/report.hpp"
#include "gansec/security/analyzer.hpp"
#include "gansec/security/confidentiality.hpp"

namespace gansec::core {

struct PipelineConfig {
  am::DatasetConfig dataset;
  gan::TrainConfig train;
  security::LikelihoodConfig likelihood;
  security::ConfidentialityConfig confidentiality;
  double train_fraction = 0.7;
  std::size_t noise_dim = 16;
  std::vector<std::size_t> generator_hidden = {128, 128};
  std::vector<std::size_t> discriminator_hidden = {128, 128};
  bool generator_batchnorm = false;
  std::uint64_t seed = 0x6A5EC;
  /// Parallel-execution knobs, installed (scoped) for the duration of
  /// run() / run_flow_pairs(). Defaults: auto thread count, deterministic.
  ExecutionConfig execution;
};

struct PipelineResult {
  cpps::Architecture architecture;
  /// Flow ids removed by Algorithm 1's feedback-loop elimination.
  std::vector<std::string> removed_feedback_flows;
  /// FP_T restricted to cross-domain pairs (the paper's experiment).
  std::vector<cpps::FlowPair> flow_pairs;
  am::LabeledDataset train_set;
  am::LabeledDataset test_set;
  gan::Cgan model;
  std::vector<gan::TrainRecord> history;
  security::LikelihoodResult likelihood;
  security::ConfidentialityReport confidentiality;
};

/// One flow pair's trained model and Algorithm 3 analysis from
/// run_flow_pairs(). `seed` is the splitmix-derived per-pair seed — a pure
/// function of (PipelineConfig::seed, pair index), never of scheduling.
struct FlowPairOutcome {
  cpps::FlowPair pair;
  std::uint64_t seed = 0;
  gan::Cgan model;
  std::vector<gan::TrainRecord> history;
  security::LikelihoodResult likelihood;
};

/// Result of the per-flow-pair model sweep (Algorithm 1's FP_T, one CGAN
/// per pair, trained concurrently).
struct FlowPairSweep {
  cpps::Architecture architecture;
  std::vector<std::string> removed_feedback_flows;
  am::LabeledDataset train_set;
  am::LabeledDataset test_set;
  /// One outcome per cross-domain flow pair, in Algorithm 1 order.
  std::vector<FlowPairOutcome> outcomes;

  /// Index of the pair whose model leaks its condition hardest (largest
  /// mean correct-minus-incorrect likelihood margin).
  std::size_t most_leaky_pair() const;
};

class GanSecPipeline {
 public:
  explicit GanSecPipeline(PipelineConfig config = PipelineConfig{});

  const PipelineConfig& config() const { return config_; }

  /// The dataset builder (valid after construction; its scaler is fitted by
  /// run()). Exposed so attack-detection harnesses can reuse the feature
  /// pipeline.
  const am::DatasetBuilder& builder() const { return builder_; }

  /// Executes steps 1-4 and returns everything the experiments need.
  PipelineResult run();

  /// Algorithm 1's full per-flow-pair sweep: trains one CGAN per
  /// cross-domain flow pair *concurrently* (pairs fan out across the
  /// thread pool; each pair's nested linear algebra then runs inline on
  /// its worker). Every pair draws from its own splitmix-derived Rng
  /// stream, so the outcomes are bit-identical regardless of thread count
  /// or scheduling order.
  FlowPairSweep run_flow_pairs();

  /// Persists every trained per-pair model of a sweep into the registry
  /// (one new generation per pair, atomic publish). This is Algorithm 2's
  /// closing line — "G learned for each flow pair is returned and stored"
  /// — and returns the manifest entries created, in sweep order.
  static std::vector<model::ModelRegistry::Entry> save_sweep(
      const FlowPairSweep& sweep, model::ModelRegistry& registry);

  /// Suggested CGAN topology for this configuration.
  gan::CganTopology topology() const;

  /// Records the resolved configuration and every derived RNG seed into a
  /// run report, so the artifact alone suffices to re-run the experiment.
  void describe(obs::RunReport& report) const;

 private:
  PipelineConfig config_;
  am::DatasetBuilder builder_;
};

}  // namespace gansec::core
