// Per-flow-pair CGAN repository — the "Storage" half of Algorithm 2
// ("CGAN Model Generation and Storage").
//
// Algorithm 2 trains one conditional model per flow pair from Algorithm 1
// and stores each trained generator/discriminator: "At the end, G learned
// for each flow pair is returned and stored." The ModelStore persists
// models keyed by flow pair in a directory, with a manifest listing the
// stored pairs.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "gansec/cpps/flow.hpp"
#include "gansec/gan/cgan.hpp"

namespace gansec::core {

class ModelStore {
 public:
  /// Opens (and creates if needed) the store directory.
  explicit ModelStore(std::filesystem::path directory);

  const std::filesystem::path& directory() const { return dir_; }

  /// Filesystem-safe key for a pair, e.g. "F1__F16".
  static std::string key_for(const cpps::FlowPair& pair);

  /// True when a model for the pair is on disk.
  bool contains(const cpps::FlowPair& pair) const;

  /// Persists a trained model under the pair's key and updates the
  /// manifest.
  void save(const cpps::FlowPair& pair, const gan::Cgan& model);

  /// Loads the stored model; throws IoError when absent.
  gan::Cgan load(const cpps::FlowPair& pair) const;

  /// Removes a stored model; no-op when absent.
  void remove(const cpps::FlowPair& pair);

  /// All pairs recorded in the manifest, in insertion order.
  std::vector<cpps::FlowPair> list() const;

 private:
  std::filesystem::path model_path(const cpps::FlowPair& pair) const;
  std::filesystem::path manifest_path() const;
  void write_manifest(const std::vector<cpps::FlowPair>& pairs) const;

  std::filesystem::path dir_;
};

}  // namespace gansec::core
