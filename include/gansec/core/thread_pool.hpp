// Fixed-size worker pool with a blocking parallel_for.
//
// This is the execution substrate behind every parallel path in gansec:
// row-blocked GEMM (math::Matrix), per-feature Algorithm 3 scoring
// (security::LikelihoodAnalyzer) and the per-flow-pair model sweep
// (core::GanSecPipeline::run_flow_pairs). Design constraints, in order:
//
//  1. Determinism: parallel_for partitions [begin, end) into fixed-size
//     chunks whose boundaries depend only on the range and the grain —
//     never on the worker count or on scheduling. Kernels that write
//     disjoint ranges therefore produce bit-identical results at any
//     thread count.
//  2. Exception safety: the first exception thrown by any chunk is
//     captured and rethrown on the calling thread after the loop drains.
//  3. Nesting: a parallel_for issued from inside a worker runs serially
//     inline, so nested parallelism can never deadlock the pool.
//
// The calling thread participates in chunk execution, so a pool with W
// workers gives W+1-way parallelism and a pool with zero workers degrades
// to a plain serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gansec::core {

class ThreadPool {
 public:
  /// Chunk body: processes indices [chunk_begin, chunk_end).
  using ChunkFn = std::function<void(std::size_t, std::size_t)>;

  /// Spawns `workers` threads (0 is valid: everything runs on the caller).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers; pending submitted tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. Safe to call from worker threads
  /// (the task is queued, never executed inline, so no deadlock).
  void submit(std::function<void()> task);

  /// Runs `body` over [begin, end) split into ceil(n / grain) chunks and
  /// blocks until every chunk finished. Chunk boundaries are a pure
  /// function of (begin, end, grain). The caller executes chunks alongside
  /// the workers. Rethrows the first chunk exception after completion.
  /// Called from a worker thread (nested), runs serially inline.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const ChunkFn& body);

  /// True when the current thread is one of this process's pool workers.
  static bool on_worker_thread();

 private:
  /// A queued task plus its enqueue timestamp (trace clock, µs) — feeds
  /// the pool.queue_wait_us gauge when the task is dequeued.
  struct Pending {
    std::function<void()> fn;
    std::uint64_t enqueued_us = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Pending> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gansec::core
