// Signal and energy flows (paper Section I-B).
#pragma once

#include <string>

namespace gansec::cpps {

/// F_S (discrete cyber-domain signal) or F_E (continuous physical-domain
/// energy).
enum class FlowKind { kSignal, kEnergy };

inline const char* flow_kind_name(FlowKind k) {
  return k == FlowKind::kSignal ? "signal" : "energy";
}

/// A directed flow between two components. `tail` emits, `head` receives.
struct Flow {
  std::string id;
  std::string name;
  FlowKind kind = FlowKind::kSignal;
  std::string tail;
  std::string head;
};

/// An ordered pair of flows (F_i, F_j) selected by Algorithm 1: F_i lies
/// upstream of F_j on a causal path (the head of F_j is reachable from the
/// tail of F_i). Following Section II of the paper, the CGAN may model
/// either conditional for the pair — Pr(F_i | F_j) or Pr(F_j | F_i); the
/// case study uses Pr(downstream emission | upstream G-code), i.e.
/// Pr(second | first).
struct FlowPair {
  std::string first;   ///< F_i — the upstream flow
  std::string second;  ///< F_j — the downstream flow

  bool operator==(const FlowPair&) const = default;
};

}  // namespace gansec::cpps
