// G_CPPS — the directed component/flow graph of Algorithm 1.
//
// The graph is built from an Architecture: nodes are components, edges are
// flows. Following line 3 of Algorithm 1, feedback loops are removed (back
// edges found by a deterministic DFS are dropped) so the flow graph is a
// DAG; the removed flow ids are recorded for reporting.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "gansec/cpps/architecture.hpp"

namespace gansec::cpps {

class CppsGraph {
 public:
  /// Builds the graph and removes feedback edges. The graph keeps its own
  /// copy of the architecture, so temporaries are safe to pass.
  explicit CppsGraph(Architecture architecture);

  const Architecture& architecture() const { return arch_; }

  std::size_t node_count() const { return node_ids_.size(); }
  const std::vector<std::string>& node_ids() const { return node_ids_; }

  /// Flow ids of edges retained after feedback removal, in architecture
  /// order.
  const std::vector<std::string>& edge_flow_ids() const { return edges_; }

  /// Flow ids dropped to break cycles.
  const std::vector<std::string>& removed_feedback_flows() const {
    return removed_;
  }

  /// Outgoing neighbor component ids of a node (after feedback removal).
  const std::vector<std::string>& adjacency(
      const std::string& component_id) const;

  /// True when `to` is reachable from `from` by a directed path (DFS),
  /// including the trivial from == to case.
  bool reachable(const std::string& from, const std::string& to) const;

  /// True when the retained edge set has no directed cycle (always true by
  /// construction; exposed for property testing).
  bool is_acyclic() const;

 private:
  std::size_t index_of(const std::string& component_id) const;
  void remove_feedback_edges();

  Architecture arch_;
  std::vector<std::string> node_ids_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<std::vector<std::size_t>> adj_;          // retained edges
  std::vector<std::vector<std::string>> adj_ids_;      // as component ids
  std::vector<std::string> edges_;                     // retained flow ids
  std::vector<std::string> removed_;                   // dropped flow ids
};

}  // namespace gansec::cpps
