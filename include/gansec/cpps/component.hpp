// CPPS components: cyber and physical domain nodes (paper Figure 3).
#pragma once

#include <string>

namespace gansec::cpps {

enum class Domain { kCyber, kPhysical };

inline const char* domain_name(Domain d) {
  return d == Domain::kCyber ? "cyber" : "physical";
}

/// One node of the CPPS decomposition. `id` is the short label used in the
/// paper's figures ("C1", "P9"); `subsystem` names the Sub_i it belongs to.
struct Component {
  std::string id;
  std::string name;
  Domain domain = Domain::kCyber;
  std::string subsystem;
};

}  // namespace gansec::cpps
