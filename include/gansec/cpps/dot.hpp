// Graphviz DOT export of G_CPPS (for reproducing Figure 6 visually).
#pragma once

#include <string>

#include "gansec/cpps/graph.hpp"

namespace gansec::cpps {

/// Renders the graph in DOT: cyber components as boxes, physical components
/// as ellipses, signal flows as solid edges, energy flows as dashed edges.
/// Feedback flows removed by Algorithm 1 appear dotted in gray.
std::string to_dot(const CppsGraph& graph);

}  // namespace gansec::cpps
