// Algorithm 1 — CPPS graph and flow-pair generation.
//
// Lines 11-14 enumerate candidate flow pairs FP_F: (F_i, F_j) such that the
// head of F_j is DFS-reachable from the tail of F_i in the (acyclic) flow
// graph. Lines 15-17 prune FP_F to FP_T, the pairs for which historical
// data exists.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gansec/cpps/graph.hpp"

namespace gansec::cpps {

/// Records which flow pairs have historical (testing / runtime) data — the
/// `Data` input of Algorithm 1. Coverage is per ordered pair.
class HistoricalData {
 public:
  /// Declares that row-aligned observations exist for (first, second).
  void add_pair(const std::string& first, const std::string& second);

  /// Declares data for a single flow; a pair is covered when both of its
  /// flows are individually observed *or* the pair was added explicitly.
  void add_flow(const std::string& flow_id);

  bool covers(const std::string& first, const std::string& second) const;

  std::size_t pair_count() const { return pairs_.size(); }
  std::size_t flow_count() const { return flows_.size(); }

 private:
  std::set<std::pair<std::string, std::string>> pairs_;
  std::set<std::string> flows_;
};

/// FP_F: all ordered candidate pairs (lines 11-14).
std::vector<FlowPair> enumerate_candidate_pairs(const CppsGraph& graph);

/// FP_T: candidate pairs pruned by historical-data coverage (lines 15-17).
std::vector<FlowPair> generate_flow_pairs(const CppsGraph& graph,
                                          const HistoricalData& data);

/// Restricts a pair list to cross-domain pairs: one flow is a signal flow,
/// the other an energy flow (the paper's Section IV-B experiment selects
/// "only cross-domain flow pairs for security analysis").
std::vector<FlowPair> select_cross_domain_pairs(
    const Architecture& architecture, const std::vector<FlowPair>& pairs);

}  // namespace gansec::cpps
