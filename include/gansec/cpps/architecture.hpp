// Design-time CPPS architecture description.
//
// This is the input to Algorithm 1: subsystems Sub, cyber components C,
// physical components P, and the signal/energy flows among them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gansec/cpps/component.hpp"
#include "gansec/cpps/flow.hpp"

namespace gansec::cpps {

class Architecture {
 public:
  Architecture() = default;
  explicit Architecture(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers a subsystem; ids must be unique. Returns its index.
  std::size_t add_subsystem(const std::string& subsystem_name);

  /// Adds a component. Its subsystem must already exist and its id must be
  /// unique; throws ModelError otherwise.
  const Component& add_component(Component component);

  /// Adds a flow. Both endpoints must be registered components and the flow
  /// id must be unique; throws ModelError otherwise.
  const Flow& add_flow(Flow flow);

  const std::vector<std::string>& subsystems() const { return subsystems_; }
  const std::vector<Component>& components() const { return components_; }
  const std::vector<Flow>& flows() const { return flows_; }

  bool has_component(const std::string& id) const;
  bool has_flow(const std::string& id) const;

  /// Throws ModelError when the id is unknown.
  const Component& component(const std::string& id) const;
  const Flow& flow(const std::string& id) const;

  /// All components belonging to a subsystem, in insertion order.
  std::vector<Component> components_in(const std::string& subsystem) const;

  /// All flows whose tail or head is the given component.
  std::vector<Flow> flows_touching(const std::string& component_id) const;

  /// Flows crossing the cyber/physical boundary (tail and head in different
  /// domains) — the cross-domain edges GAN-Sec cares about.
  std::vector<Flow> cross_domain_flows() const;

 private:
  std::string name_;
  std::vector<std::string> subsystems_;
  std::vector<Component> components_;
  std::vector<Flow> flows_;
};

}  // namespace gansec::cpps
