// Parzen Gaussian-window kernel density estimation.
//
// Algorithm 3 of the paper fits a "Parzen Gaussian Window" distribution to
// generator samples per frequency feature and scores test samples with it
// (the sklearn-style `score` returning a log-likelihood, then
// Like = exp(LogLike) * h). This class reproduces those semantics.
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::stats {

class ParzenKde {
 public:
  /// Fits the estimator: density(x) = (1/n) sum_i N(x; sample_i, h^2).
  /// Throws InvalidArgumentError on empty samples or non-positive h.
  ParzenKde(std::vector<double> samples, double bandwidth);

  double bandwidth() const { return h_; }
  std::size_t sample_count() const { return samples_.size(); }

  /// Log density at x (log-sum-exp, numerically stable). Always finite:
  /// when every kernel underflows (x far from all samples, or h -> 0 with
  /// x off-sample) the result clamps to the most negative finite double
  /// rather than -inf or NaN, so exp() of it is exactly 0.
  double log_density(double x) const;

  /// Density at x.
  double density(double x) const;

  /// sklearn KernelDensity::score for a single sample — alias of
  /// log_density, named to mirror Algorithm 3 line 9.
  double score(double x) const { return log_density(x); }

  /// Algorithm 3 line 10: exp(score(x)) * h — the h-scaled likelihood the
  /// paper tabulates (Table I). For a Gaussian kernel this is bounded by
  /// 1/sqrt(2*pi) ~ 0.399 times the local mass concentration.
  double scaled_likelihood(double x) const;

 private:
  std::vector<double> samples_;
  double h_;
};

}  // namespace gansec::stats
