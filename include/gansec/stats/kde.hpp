// Parzen Gaussian-window kernel density estimation.
//
// Algorithm 3 of the paper fits a "Parzen Gaussian Window" distribution to
// generator samples per frequency feature and scores test samples with it
// (the sklearn-style `score` returning a log-likelihood, then
// Like = exp(LogLike) * h). ParzenKde owns its samples; ParzenScorer is the
// non-owning view the scoring hot loop uses over caller-managed buffers
// (e.g. per-thread workspace scratch) — both produce identical values.
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::stats {

/// Non-owning Parzen Gaussian-window scorer over a borrowed sample buffer.
/// The buffer must stay alive (and unmodified) for the scorer's lifetime.
class ParzenScorer {
 public:
  /// Validates on construction: throws InvalidArgumentError on an empty
  /// buffer or non-positive/non-finite h, NumericError on non-finite
  /// samples.
  ParzenScorer(const double* samples, std::size_t count, double bandwidth);

  double bandwidth() const { return h_; }
  std::size_t sample_count() const { return count_; }
  /// The borrowed sample buffer (exposed so checkpoints can persist the
  /// estimator and tests can assert zero-copy rebinding).
  const double* samples() const { return samples_; }

  /// Log density at x (two-pass log-sum-exp, numerically stable, no
  /// allocation). Always finite: when every kernel underflows (x far from
  /// all samples, or h -> 0 with x off-sample) the result clamps to the
  /// most negative finite double rather than -inf or NaN, so exp() of it
  /// is exactly 0.
  double log_density(double x) const;

  /// Density at x.
  double density(double x) const;

  /// sklearn KernelDensity::score for a single sample — alias of
  /// log_density, named to mirror Algorithm 3 line 9.
  double score(double x) const { return log_density(x); }

  /// Algorithm 3 line 10: exp(score(x)) * h — the h-scaled likelihood the
  /// paper tabulates (Table I). For a Gaussian kernel this is bounded by
  /// 1/sqrt(2*pi) ~ 0.399 times the local mass concentration.
  double scaled_likelihood(double x) const;

 private:
  const double* samples_;
  std::size_t count_;
  double h_;
};

/// Owning variant: copies/moves the samples in and scores through a
/// ParzenScorer view of them.
class ParzenKde {
 public:
  /// Fits the estimator: density(x) = (1/n) sum_i N(x; sample_i, h^2).
  /// Throws InvalidArgumentError on empty samples or non-positive h.
  ParzenKde(std::vector<double> samples, double bandwidth);

  // Movable (the scorer's pointer follows the vector's heap buffer) but not
  // copyable: a copied scorer would still view the source's samples.
  ParzenKde(ParzenKde&&) noexcept = default;
  ParzenKde& operator=(ParzenKde&&) noexcept = default;
  ParzenKde(const ParzenKde&) = delete;
  ParzenKde& operator=(const ParzenKde&) = delete;

  double bandwidth() const { return scorer_.bandwidth(); }
  std::size_t sample_count() const { return samples_.size(); }

  double log_density(double x) const { return scorer_.log_density(x); }
  double density(double x) const { return scorer_.density(x); }
  double score(double x) const { return scorer_.score(x); }
  double scaled_likelihood(double x) const {
    return scorer_.scaled_likelihood(x);
  }

 private:
  std::vector<double> samples_;
  ParzenScorer scorer_;
};

}  // namespace gansec::stats
