// Fixed-range histogram with probability-mass access.
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::stats {

class Histogram {
 public:
  /// `bins` equal-width bins spanning [lo, hi). Values outside the range
  /// clamp into the first/last bin.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }

  /// Index of the bin containing x (clamped).
  std::size_t bin_index(double x) const;

  /// Center value of a bin.
  double bin_center(std::size_t bin) const;

  /// Probability mass per bin (empty histogram -> all zeros).
  std::vector<double> probabilities() const;

  /// Probability density per bin (mass / bin width).
  std::vector<double> densities() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gansec::stats
