// Information-theoretic metrics.
//
// Section II of the paper notes that "various other metrics may also be
// created using the conditional probability values (e.g., mutual
// information metrics of side channel attacks)". These functions provide
// that layer: entropies, divergences and a binned mutual-information
// estimator between a discrete condition and a continuous feature.
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::stats {

/// Shannon entropy (nats) of a discrete distribution. Probabilities must be
/// non-negative and sum to ~1 (tolerance 1e-6).
double entropy(const std::vector<double>& probabilities);

/// Kullback-Leibler divergence D(p || q) in nats. Bins where p > 0 but
/// q == 0 contribute +infinity; p == 0 bins contribute 0.
double kl_divergence(const std::vector<double>& p,
                     const std::vector<double>& q);

/// Jensen-Shannon divergence (symmetric, finite, in [0, ln 2]).
double js_divergence(const std::vector<double>& p,
                     const std::vector<double>& q);

/// Mutual information I(C; X) in nats between a discrete class C and a
/// continuous feature X, estimated by histogramming X into `bins` over its
/// observed range. `samples_per_class[c]` holds the X observations under
/// class c; class priors are proportional to sample counts.
/// This quantifies side-channel leakage: 0 means the emission carries no
/// information about the G-code condition.
double mutual_information(
    const std::vector<std::vector<double>>& samples_per_class,
    std::size_t bins);

}  // namespace gansec::stats
