// Classification metrics: confusion matrix, accuracy, ROC / AUC.
//
// Used to evaluate the attacker's G-code inference (confidentiality) and
// the defender's likelihood-threshold attack detector (integrity /
// availability).
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::stats {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  void add(std::size_t actual, std::size_t predicted);

  std::size_t classes() const { return n_; }
  std::size_t count(std::size_t actual, std::size_t predicted) const;
  std::size_t total() const { return total_; }

  double accuracy() const;
  /// Recall of one class (diagonal / row sum); 0 when the class is absent.
  double recall(std::size_t cls) const;
  /// Precision of one class (diagonal / column sum); 0 when never predicted.
  double precision(std::size_t cls) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> counts_;  // n x n row-major, rows = actual
  std::size_t total_ = 0;
};

/// Fraction of equal entries; sizes must match and be non-empty.
double accuracy(const std::vector<std::size_t>& predicted,
                const std::vector<std::size_t>& actual);

struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  ///< true-positive rate at score >= threshold
  double fpr = 0.0;  ///< false-positive rate at score >= threshold
};

/// ROC curve for binary labels (true = positive) scored by `scores`
/// (higher = more positive). Points are ordered by descending threshold and
/// include the (0,0) and (1,1) endpoints.
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<bool>& labels);

/// Area under the ROC curve via trapezoidal integration. Requires at least
/// one positive and one negative label.
double auc(const std::vector<double>& scores,
           const std::vector<bool>& labels);

}  // namespace gansec::stats
