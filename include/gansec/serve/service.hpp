// Streaming detector runtime: N machine streams scored online.
//
// Topology: one SpscRing<StreamWindow> per stream (ingest thread ->
// worker), a sharded worker pool on top of core::ThreadPool (stream i is
// owned by shard i % workers, so every window of a stream is scored in
// order by one worker — verdict sequences are a pure function of the
// window sequence, independent of the worker count), and one
// security::StreamDetector per stream sharing an immutable
// security::ScoringModel that can be hot-swapped between windows.
//
// Per-window the scoring path allocates nothing: the CWT plan, scratch
// energy/feature buffers and Parzen estimators are preallocated, and
// spent sample buffers are recycled back to the producer through a second
// ring. Backpressure is drop-oldest (stale windows describe machine state
// that has already passed) counted in serve.windows_dropped with a
// once-per-stream warning — loss is observable, never silent.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/core/thread_pool.hpp"
#include "gansec/dsp/cwt.hpp"
#include "gansec/dsp/features.hpp"
#include "gansec/security/stream_detector.hpp"
#include "gansec/serve/spsc_ring.hpp"

namespace gansec::obs {
class Counter;
class Histogram;
}  // namespace gansec::obs

namespace gansec::serve {

/// One acoustic observation window in flight from ingest to a worker.
struct StreamWindow {
  std::uint64_t sequence = 0;      ///< per-stream ingest order
  std::size_t expected_label = 0;  ///< commanded condition (cyber side)
  std::uint64_t enqueued_us = 0;   ///< trace clock at push
  std::vector<double> samples;     ///< raw waveform, exactly window_length
};

/// One scored window (recorded when Config::keep_results is set).
struct WindowResult {
  std::uint64_t sequence = 0;
  std::size_t expected_label = 0;
  double score = 0.0;
  double mean_feature = 0.0;
  security::StreamVerdict verdict = security::StreamVerdict::kBenign;
  double latency_us = 0.0;  ///< enqueue -> verdict, trace clock
};

/// Monotonic per-stream totals, readable while the service runs.
struct StreamTotals {
  std::uint64_t ingested = 0;
  std::uint64_t scored = 0;
  std::uint64_t dropped = 0;
  std::uint64_t benign = 0;
  std::uint64_t integrity = 0;
  std::uint64_t availability = 0;
};

class DetectorService {
 public:
  struct Config {
    std::size_t streams = 1;
    std::size_t workers = 1;
    /// Per-stream ring capacity (rounded up to a power of two).
    std::size_t ring_capacity = 64;
    /// Samples per window; every pushed window must have exactly this
    /// length (the CWT plan is precomputed for it).
    std::size_t window_length = 0;
    security::StreamDetectorConfig detector;
    /// Record every WindowResult per stream (tests / summaries). Result
    /// storage is preallocated with `expected_windows` when given.
    bool keep_results = false;
    std::size_t expected_windows = 0;
  };

  /// `builder` supplies the feature pipeline (CWT config, frequency grid,
  /// fitted scaler); it is only read during construction.
  DetectorService(std::shared_ptr<const security::ScoringModel> model,
                  const am::DatasetBuilder& builder, Config config);
  ~DetectorService();

  DetectorService(const DetectorService&) = delete;
  DetectorService& operator=(const DetectorService&) = delete;

  /// Launches the worker shards. Call once.
  void start();

  /// Drains every ring, then stops the workers. Producers must have
  /// stopped pushing. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  std::size_t streams() const { return config_.streams; }
  std::size_t window_length() const { return config_.window_length; }

  /// A recycled (or fresh) sample buffer for the producer to fill.
  std::vector<double> acquire_buffer(std::size_t stream);

  /// Drop-oldest enqueue: never blocks; overflow discards the oldest
  /// queued window (counted + warned). Returns the number dropped.
  std::size_t push(std::size_t stream, std::size_t expected_label,
                   std::vector<double>&& samples);

  /// Lossless enqueue: spins (with backoff) until the ring has space.
  void push_blocking(std::size_t stream, std::size_t expected_label,
                     std::vector<double>&& samples);

  /// Installs a new scoring model; every stream picks it up before its
  /// next window. The model must match the current shape.
  void install_model(std::shared_ptr<const security::ScoringModel> model);

  /// Generation counter bumped by install_model (starts at 0).
  std::uint64_t model_generation() const {
    return model_generation_.load(std::memory_order_acquire);
  }

  StreamTotals totals(std::size_t stream) const;

  /// Recorded results for one stream, in window order. Only meaningful
  /// after stop() and only when Config::keep_results is set.
  const std::vector<WindowResult>& results(std::size_t stream) const;

 private:
  struct StreamState;
  struct ShardContext;

  void shard_loop(std::size_t shard);
  void process_window(ShardContext& ctx, StreamState& state, StreamWindow& w);
  StreamState& stream_at(std::size_t stream);
  const StreamState& stream_at(std::size_t stream) const;

  Config config_;
  dsp::MinMaxScaler scaler_;
  std::vector<std::unique_ptr<StreamState>> states_;
  std::vector<std::unique_ptr<ShardContext>> shards_;
  std::unique_ptr<core::ThreadPool> pool_;

  std::mutex model_mu_;
  std::shared_ptr<const security::ScoringModel> model_;
  std::atomic<std::uint64_t> model_generation_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> live_shards_{0};
};

}  // namespace gansec::serve
