// Lock-free bounded single-producer/single-consumer ring.
//
// One ring per machine stream carries windows from the ingest thread to
// the worker shard that owns the stream. The implementation is the
// classic bounded queue with a per-slot sequence number: each slot
// publishes its state through an atomic counter, so push and pop
// synchronize only through that slot (acquire/release) and the head/tail
// indices — no locks, no spurious data races under TSan.
//
// Backpressure policy: `try_push` refuses when full; `push_overwrite`
// drops the *oldest* queued element instead (the monitor wants the most
// recent windows — stale windows describe a state the machine has already
// left). Drops are returned to the caller so they can be counted and
// warned about, never silent. `push_overwrite` makes the producer briefly
// act as a second consumer, which the sequence-number protocol supports.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "gansec/error.hpp"

namespace gansec::serve {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; must be positive.
  explicit SpscRing(std::size_t capacity) {
    if (capacity == 0) {
      throw InvalidArgumentError("SpscRing: capacity must be positive");
    }
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1U;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return capacity_; }

  /// Queued element count; exact in quiescence, approximate mid-flight.
  std::size_t size_estimate() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty() const { return size_estimate() == 0; }

  // gansec-lint: hot-path
  /// Enqueues `value`; returns false (value untouched) when full.
  // gansec-lint: seqlock(writer)
  bool try_push(T&& value) {
    Slot* slot = nullptr;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::uint64_t seq = slot->sequence.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // slot still holds an unconsumed element: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }
  // gansec-lint: end-seqlock

  /// Dequeues into `out`; returns false when empty.
  // gansec-lint: seqlock(reader)
  bool try_pop(T& out) {
    Slot* slot = nullptr;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::uint64_t seq = slot->sequence.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // slot not yet published: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(slot->value);
    slot->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }
  // gansec-lint: end-seqlock

  /// Enqueues `value`, discarding the oldest queued element(s) when full.
  /// Returns the number of elements dropped (0 on a clean push). The
  /// caller owns counting/warning about the loss.
  std::size_t push_overwrite(T&& value) {
    std::size_t dropped = 0;
    while (!try_push(std::move(value))) {
      T discarded;
      if (try_pop(discarded)) {
        ++dropped;
      }
    }
    return dropped;
  }
  // gansec-lint: end-hot-path

 private:
  struct Slot {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next push position
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next pop position
};

}  // namespace gansec::serve
