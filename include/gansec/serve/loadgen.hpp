// Deterministic synthetic-printer load generator for the streaming
// detector: N independent machine streams, each producing observation
// windows from the `am` acoustic simulator exactly the way the dataset
// builder does (same G-code -> motion -> emission path), with optional
// integrity / availability attack injection mirroring
// security::AttackInjector.
//
// Determinism: stream i draws from math::split_seed(seed, i), so every
// stream's (label, attack, feedrate, waveform) sequence is a pure
// function of (config, stream index) — independent of worker counts,
// pacing, or which streams run concurrently. That is what makes the
// batch-vs-streaming bit-identity test (and reproducible benches)
// possible.
#pragma once

#include <cstdint>
#include <vector>

#include "gansec/am/acoustic.hpp"
#include "gansec/am/dataset.hpp"
#include "gansec/math/rng.hpp"
#include "gansec/security/attacks.hpp"

namespace gansec::serve {

struct LoadGenConfig {
  std::size_t streams = 4;
  std::size_t windows_per_stream = 64;
  /// Windows per second per stream; 0 = as fast as possible. Pacing is
  /// applied by the driver (CLI), not by the source itself.
  double rate_per_stream = 0.0;
  /// Fraction of windows carrying an attack (per-window Bernoulli draw).
  double attack_fraction = 0.0;
  /// Which attack the adversarial fraction carries.
  security::AttackKind attack_kind = security::AttackKind::kIntegrity;
  std::uint64_t seed = 2019;
};

/// One synthetic printer stream. Not thread-safe; one source per
/// producer. Construction is cheap — sources hold only RNG + simulator
/// state.
class StreamSource {
 public:
  struct Window {
    std::size_t expected_label = 0;        ///< commanded condition
    security::AttackKind truth =
        security::AttackKind::kNone;       ///< ground-truth injection
    std::vector<double> samples;
  };

  /// `builder` supplies the machine/acoustic configuration (only its
  /// config and gcode_for_label are used; the builder is not retained
  /// mutably). Requires the exclusive XYZ condition scheme.
  StreamSource(const am::DatasetBuilder& builder, const LoadGenConfig& config,
               std::size_t stream_index);

  /// Synthesizes the next window. `buffer` (optional) is reused as the
  /// sample destination when its capacity allows, so a recycled buffer
  /// avoids the allocation.
  Window next(std::vector<double>&& buffer = {});

  std::size_t stream_index() const { return stream_index_; }
  /// Samples per window for this configuration (llround(window_s * rate)).
  std::size_t window_length() const { return window_length_; }
  std::uint64_t windows_generated() const { return generated_; }
  std::uint64_t attacks_injected() const { return attacks_; }

 private:
  const am::DatasetBuilder& builder_;
  LoadGenConfig config_;
  std::size_t stream_index_;
  std::size_t window_length_;
  math::Rng rng_;
  am::AcousticSimulator acoustics_;
  std::uint64_t generated_ = 0;
  std::uint64_t attacks_ = 0;
};

/// Samples per observation window for a dataset configuration.
std::size_t window_sample_count(const am::DatasetConfig& config);

/// FNV-1a over the raw waveform bytes of every window a stream source
/// would produce — the deterministic fingerprint `gansec loadgen` prints.
std::uint64_t stream_checksum(StreamSource& source, std::size_t windows);

}  // namespace gansec::serve
