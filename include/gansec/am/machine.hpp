// Cartesian FDM printer kinematics.
//
// Interprets parsed G/M-code into motion segments: for each move the
// simulator computes per-axis displacement, duration, and the stepper-motor
// step rates — the quantities that determine the acoustic emission.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "gansec/am/gcode.hpp"

namespace gansec::am {

enum class Axis : std::size_t { kX = 0, kY = 1, kZ = 2, kE = 3 };
inline constexpr std::size_t kAxisCount = 4;

inline const char* axis_name(Axis a) {
  constexpr const char* names[kAxisCount] = {"X", "Y", "Z", "E"};
  return names[static_cast<std::size_t>(a)];
}

struct AxisConfig {
  double steps_per_mm = 80.0;
  double max_feedrate_mm_s = 200.0;
};

struct PrinterConfig {
  // Typical Cartesian FDM defaults: 80 steps/mm belt-driven X/Y, 400
  // steps/mm leadscrew Z, 95 steps/mm geared extruder.
  std::array<AxisConfig, kAxisCount> axes{
      AxisConfig{80.0, 200.0},   // X
      AxisConfig{80.0, 200.0},   // Y
      AxisConfig{400.0, 8.0},    // Z
      AxisConfig{95.0, 60.0},    // E
  };
  double default_feedrate_mm_min = 1200.0;

  const AxisConfig& axis(Axis a) const {
    return axes[static_cast<std::size_t>(a)];
  }
};

struct MachineState {
  std::array<double, kAxisCount> position{0.0, 0.0, 0.0, 0.0};  ///< mm
  double feedrate_mm_min = 1200.0;
  double hotend_target_c = 0.0;

  double pos(Axis a) const { return position[static_cast<std::size_t>(a)]; }
};

/// One executed command's physical effect.
struct MotionSegment {
  std::array<double, kAxisCount> displacement{0, 0, 0, 0};  ///< mm, net (signed)
  /// Total distance traveled per axis in mm. Equals |displacement| for
  /// linear moves; exceeds it for arcs (a full circle has travel but zero
  /// net displacement). Step counts derive from travel.
  std::array<double, kAxisCount> travel{0, 0, 0, 0};
  std::array<double, kAxisCount> step_rate{0, 0, 0, 0};     ///< steps/s
  double duration_s = 0.0;
  double feedrate_mm_s = 0.0;
  std::string source;  ///< originating G-code text

  bool moves(Axis a) const {
    return step_rate[static_cast<std::size_t>(a)] > 0.0;
  }
  bool is_motion() const { return duration_s > 0.0; }

  /// Axes among X, Y, Z with nonzero motion (extruder excluded, matching
  /// the paper's [X, Y, Z] condition encoding).
  std::vector<Axis> moving_xyz_axes() const;
};

class MachineSimulator {
 public:
  explicit MachineSimulator(PrinterConfig config = PrinterConfig{});

  const PrinterConfig& config() const { return config_; }
  const MachineState& state() const { return state_; }

  /// Executes one command and returns its motion segment. Non-motion
  /// commands (M-codes, G90/G21, ...) return a zero-duration segment.
  /// Unknown G-codes throw ParseError; feedrates are clamped to per-axis
  /// limits.
  MotionSegment apply(const GcodeCommand& command);

  /// Executes a program; only segments with positive duration are returned.
  std::vector<MotionSegment> run_program(
      const std::vector<GcodeCommand>& program);

  void reset();

 private:
  MotionSegment linear_move(const GcodeCommand& command);
  /// G2 (clockwise) / G3 (counter-clockwise) XY-plane arc with I/J center
  /// offsets. Travel per axis is integrated along the arc.
  MotionSegment arc_move(const GcodeCommand& command, bool clockwise);
  /// Shared epilogue: clamps the feedrate to axis limits based on each
  /// axis's travel share, fills duration and step rates.
  void finish_segment(MotionSegment& segment, double path_length);

  PrinterConfig config_;
  MachineState state_;
};

}  // namespace gansec::am
