// Stepper-motor acoustic emission model and contact-microphone simulator.
//
// The paper's testbed records acoustic/vibration energy with a contact
// microphone on the printer frame inside an anechoic chamber. Lacking that
// dataset (it is not public), this module synthesizes the emission from
// first-order physics:
//
//   * each stepping motor radiates at its step rate and the first few
//     harmonics (magnetic detent torque ripple),
//   * each motor excites a characteristic frame resonance whose center
//     frequency depends on where the motor is mounted (Z via the leadscrew
//     couples at low frequency; X/Y belt axes ring higher),
//   * a mains hum and a broadband Gaussian noise floor model the residual
//     environment inside the chamber.
//
// What matters for GAN-Sec is that the class-conditional spectral structure
// exists and differs per motor — exactly the property the paper's attack
// exploits.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gansec/am/machine.hpp"
#include "gansec/math/rng.hpp"

namespace gansec::am {

/// Which emission path the virtual microphone taps. The paper monitors the
/// energy flows P2, P3, P4, P5 (motors) and P8 (frame) into the
/// environment P9; a near-field sensor on one source isolates that flow,
/// while the contact microphone of the testbed hears the mix.
enum class EmissionChannel {
  kMixed,   ///< contact microphone: every source superimposed (default)
  kMotorX,  ///< flow F16: stepper X -> environment
  kMotorY,  ///< flow F17: stepper Y -> environment
  kMotorZ,  ///< flow F18: stepper Z -> environment
  kMotorE,  ///< flow F19: extruder -> environment
  kFrame,   ///< flow F20: frame-coupled vibration of all motors
};

const char* emission_channel_name(EmissionChannel channel);

struct MotorAcousticProfile {
  /// Coupling of this motor into the contact microphone.
  double base_amplitude = 1.0;
  /// Gains of harmonics 1..N of the step rate.
  std::vector<double> harmonic_gains{1.0, 0.5, 0.25};
  /// Frame resonance excited by this motor.
  double resonance_hz = 1000.0;
  double resonance_gain = 0.5;
  /// Resonance phase-noise bandwidth (Hz) — widens the spectral line.
  double resonance_jitter_hz = 20.0;
};

struct AcousticConfig {
  double sample_rate = 16000.0;
  double noise_floor = 0.02;     ///< broadband Gaussian noise stddev
  double hum_amplitude = 0.01;   ///< mains hum amplitude
  double hum_hz = 60.0;
  std::array<MotorAcousticProfile, kAxisCount> motors{
      // X: belt axis, mid-frequency frame ring.
      MotorAcousticProfile{1.0, {1.0, 0.45, 0.20, 0.08}, 1700.0, 0.55, 25.0},
      // Y: moves the bed mass, stronger low harmonics, lower resonance.
      MotorAcousticProfile{1.1, {1.0, 0.60, 0.25, 0.10}, 1050.0, 0.60, 25.0},
      // Z: leadscrew drive, strong low-frequency thud — the most
      // distinctive signature (the paper found Cond3/Z easiest to infer).
      MotorAcousticProfile{1.4, {1.0, 0.80, 0.50, 0.30, 0.15}, 320.0, 0.95,
                           12.0},
      // E: geared extruder, high-frequency whine.
      MotorAcousticProfile{0.8, {1.0, 0.35, 0.15}, 2400.0, 0.40, 30.0},
  };
};

class AcousticSimulator {
 public:
  explicit AcousticSimulator(AcousticConfig config = AcousticConfig{},
                             std::uint64_t seed = 0xAC00571C);

  const AcousticConfig& config() const { return config_; }

  /// Contact-microphone waveform for one motion segment. The duration may
  /// be overridden (e.g. to synthesize a fixed-length observation window
  /// regardless of segment length); 0 keeps the segment duration.
  std::vector<double> synthesize_segment(const MotionSegment& segment,
                                         double duration_s = 0.0);

  /// Waveform of a single emission channel for one motion segment. Motor
  /// channels carry only that motor's step harmonics; the frame channel
  /// carries every motor's resonance contribution scaled by
  /// `frame_coupling`; kMixed equals synthesize_segment. Background noise
  /// is always present (the sensor still sits in the chamber).
  std::vector<double> synthesize_channel(const MotionSegment& segment,
                                         EmissionChannel channel,
                                         double duration_s = 0.0);

  /// Concatenated waveform for a whole program.
  std::vector<double> synthesize_program(
      const std::vector<MotionSegment>& segments);

  /// Background-only waveform (no motor running) — the "idle" class.
  std::vector<double> synthesize_idle(double duration_s);

  /// Relative strength of resonance lines on the frame channel.
  static constexpr double kFrameCoupling = 0.8;

 private:
  void add_motor(std::vector<double>& buffer, Axis axis, double step_rate,
                 bool harmonics, bool resonance, double resonance_scale);
  void add_background(std::vector<double>& buffer);

  AcousticConfig config_;
  math::Rng rng_;
};

}  // namespace gansec::am
