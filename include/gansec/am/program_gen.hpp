// G-code calibration-program generation.
//
// The paper's training data comes from "3D objects that only move one
// stepper motor at a time" (Section IV-B). This generator emits such
// calibration programs: single-axis moves with randomized feedrates and
// distances, alternating across X/Y/Z, always returning to the staging
// position so the program stays inside the work envelope.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>

namespace gansec::am {

struct CalibrationProgramConfig {
  /// Out-and-back move pairs generated per axis.
  std::size_t moves_per_axis = 10;
  /// Commanded feedrate ranges (mm/s) per XYZ axis.
  std::array<std::pair<double, double>, 3> feed_mm_s{
      std::pair<double, double>{12.0, 35.0},
      std::pair<double, double>{12.0, 35.0},
      std::pair<double, double>{2.0, 6.0}};
  double min_distance_mm = 4.0;
  double max_distance_mm = 25.0;
  /// Staging position the program starts from and returns to.
  std::array<double, 3> origin_mm{20.0, 20.0, 10.0};
  bool home_first = true;
  std::uint64_t seed = 0xCA11B;
};

/// Generates the calibration program as G-code text. Throws
/// InvalidArgumentError on inconsistent configuration.
std::string make_calibration_program(
    const CalibrationProgramConfig& config = CalibrationProgramConfig{});

}  // namespace gansec::am
