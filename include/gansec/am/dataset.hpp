// Labeled (condition, spectrum) dataset generation.
//
// Reproduces the paper's data-collection procedure (Section IV-B) on the
// simulated testbed: G-code moves that run one stepper motor at a time are
// executed, the contact-microphone emission is synthesized for a fixed
// observation window, converted by CWT into 100 non-uniform frequency bins
// in 50-5000 Hz, and min-max scaled to [0,1].
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "gansec/am/acoustic.hpp"
#include "gansec/am/encoder.hpp"
#include "gansec/am/machine.hpp"
#include "gansec/dsp/binner.hpp"
#include "gansec/dsp/cwt.hpp"
#include "gansec/dsp/features.hpp"
#include "gansec/dsp/stft.hpp"
#include "gansec/math/matrix.hpp"
#include "gansec/math/rng.hpp"

namespace gansec::am {

/// Row-aligned features (N x bins), one-hot conditions (N x cond_dim) and
/// integer class labels.
struct LabeledDataset {
  math::Matrix features;
  math::Matrix conditions;
  std::vector<std::size_t> labels;

  std::size_t size() const { return labels.size(); }

  /// Throws DimensionError when rows/labels are inconsistent.
  void validate() const;

  /// Rows with the given class label.
  math::Matrix features_for_label(std::size_t label) const;

  /// In-place row shuffle (features/conditions/labels stay aligned).
  void shuffle(math::Rng& rng);

  /// First n rows as a new dataset (after an external shuffle this is a
  /// uniform subsample — the paper's "attacker data budget" knob).
  LabeledDataset take(std::size_t n) const;

  static LabeledDataset concat(const LabeledDataset& a,
                               const LabeledDataset& b);
};

/// Time-frequency analysis used to turn waveforms into features. The paper
/// uses the CWT; the STFT path exists for the feature-method ablation.
enum class FeatureMethod { kCwt, kStft };

struct DatasetConfig {
  std::size_t samples_per_condition = 200;
  /// Observation window per sample, seconds.
  double window_s = 0.35;
  /// Feature grid (paper: 100 log bins, 50-5000 Hz).
  double f_min = 50.0;
  double f_max = 5000.0;
  std::size_t bins = 100;
  dsp::BinSpacing spacing = dsp::BinSpacing::kLogarithmic;
  ConditionScheme scheme = ConditionScheme::kExclusiveXyz;
  /// Which emission path the virtual sensor observes (per monitored flow:
  /// F16-F19 = the four motors, F20 = frame, kMixed = the testbed's
  /// contact microphone hearing everything).
  EmissionChannel channel = EmissionChannel::kMixed;
  FeatureMethod feature_method = FeatureMethod::kCwt;
  /// STFT frame length (power of two) when feature_method == kStft.
  std::size_t stft_frame_length = 1024;
  /// Commanded feedrate ranges (mm/s) per XYZ axis; Z is leadscrew-slow.
  std::array<std::pair<double, double>, 3> feed_mm_s{
      std::pair<double, double>{12.0, 35.0},
      std::pair<double, double>{12.0, 35.0},
      std::pair<double, double>{2.0, 6.0}};
  AcousticConfig acoustic{};
  PrinterConfig printer{};
  std::uint64_t seed = 42;
};

class DatasetBuilder {
 public:
  explicit DatasetBuilder(DatasetConfig config = DatasetConfig{});

  const DatasetConfig& config() const { return config_; }
  const dsp::FrequencyBinner& binner() const { return binner_; }
  const ConditionEncoder& encoder() const { return encoder_; }

  /// Generates the full dataset and fits the scaler on it.
  LabeledDataset build();

  /// Generates one dataset, shuffles it, and splits train/test.
  std::pair<LabeledDataset, LabeledDataset> build_split(
      double train_fraction);

  /// Raw (unscaled) CWT band energies of a waveform: 1 x bins.
  math::Matrix raw_features(const std::vector<double>& waveform) const;

  /// Scaled features of a waveform using the scaler fitted by build().
  math::Matrix features_for_waveform(
      const std::vector<double>& waveform) const;

  /// The fitted scaler (throws InvalidArgumentError before build()).
  const dsp::MinMaxScaler& scaler() const;

  /// Installs a previously fitted scaler (e.g. loaded from disk alongside a
  /// cached dataset) so features_for_waveform works without a rebuild.
  void restore_scaler(dsp::MinMaxScaler scaler);

  /// The G-code line used to exercise a class label at the given feedrate;
  /// exposed so tests and examples can show the signal-flow side.
  std::string gcode_for_label(std::size_t label, double feed_mm_s,
                              double distance_mm) const;

 private:
  /// One (waveform, label) observation for a class label.
  std::vector<double> synthesize_observation(std::size_t label,
                                             AcousticSimulator& acoustics);

  DatasetConfig config_;
  dsp::FrequencyBinner binner_;
  dsp::MorletCwt cwt_;
  dsp::Stft stft_;
  ConditionEncoder encoder_;
  dsp::MinMaxScaler scaler_;
  math::Rng rng_;
};

}  // namespace gansec::am
