// Move-boundary detection on continuous emission recordings.
//
// A real eavesdropper records one continuous waveform, not pre-segmented
// per-move windows. Each G-code move has a stationary spectrum (fixed step
// rates and resonances), so transitions between moves appear as spikes of
// *spectral flux* — the frame-to-frame change of the normalized STFT
// magnitude. This detector finds those spikes and returns the move
// boundaries, turning a raw recording into the per-move windows the CGAN
// attacker consumes.
#pragma once

#include <cstddef>
#include <vector>

#include "gansec/dsp/stft.hpp"

namespace gansec::am {

struct SegmenterConfig {
  double sample_rate = 16000.0;
  std::size_t frame_length = 1024;  ///< STFT frame (power of two)
  std::size_t hop = 256;
  /// Flux threshold as a multiple of the median flux. True move
  /// transitions spike an order of magnitude above the noise-floor median;
  /// 5x rejects the within-move fluctuation tail.
  double threshold_factor = 5.0;
  /// Minimum move duration in seconds — closer boundary candidates are
  /// merged (keeps one boundary per transition).
  double min_segment_s = 0.08;
};

/// A detected move: [begin, end) in samples.
struct DetectedSegment {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t length() const { return end - begin; }
  bool operator==(const DetectedSegment&) const = default;
};

class MoveSegmenter {
 public:
  explicit MoveSegmenter(SegmenterConfig config = SegmenterConfig{});

  const SegmenterConfig& config() const { return config_; }

  /// Spectral flux per STFT frame (first frame has flux 0). Exposed for
  /// testing and threshold diagnostics.
  std::vector<double> spectral_flux(const std::vector<double>& waveform) const;

  /// Boundary positions in samples (excluding 0 and waveform size).
  std::vector<std::size_t> detect_boundaries(
      const std::vector<double>& waveform) const;

  /// Splits the waveform at the detected boundaries: always returns at
  /// least one segment covering the whole recording.
  std::vector<DetectedSegment> segment(
      const std::vector<double>& waveform) const;

 private:
  SegmenterConfig config_;
  dsp::Stft stft_;
};

}  // namespace gansec::am
