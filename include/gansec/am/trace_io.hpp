// Trace file I/O.
//
// CSV persistence for labeled datasets and plain-text persistence for raw
// waveforms, so recorded traces from a real printer can be dropped into the
// pipeline in place of the simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gansec/am/dataset.hpp"

namespace gansec::am {

/// CSV columns: label, cond_0..cond_{C-1}, feat_0..feat_{F-1} with a header
/// row "label,cond...,feat...".
void save_dataset_csv(const LabeledDataset& dataset, std::ostream& os);
LabeledDataset load_dataset_csv(std::istream& is);

void save_dataset_csv_file(const LabeledDataset& dataset,
                           const std::string& path);
LabeledDataset load_dataset_csv_file(const std::string& path);

/// Waveform: first line "gansec-wave 1 <sample_rate> <n>", then one sample
/// per line.
void save_waveform(const std::vector<double>& samples, double sample_rate,
                   std::ostream& os);
std::pair<std::vector<double>, double> load_waveform(std::istream& is);

}  // namespace gansec::am
