// The case-study CPPS architecture: a Cartesian FDM 3D printer (Figure 6).
//
// Nodes follow the paper's labeling: cyber components C1-C4 and physical
// components P1-P9, where C4 is the external sub-system injecting G/M-code
// and P9 is the physical environment receiving intentional and
// unintentional energy flows.
#pragma once

#include "gansec/am/acoustic.hpp"
#include "gansec/cpps/algorithm1.hpp"
#include "gansec/cpps/architecture.hpp"

namespace gansec::am {

/// Flow ids used by the printer architecture (stable API constants).
namespace printer_flows {
inline constexpr const char* kGcodeIn = "F1";          ///< C4 -> C1 signal
inline constexpr const char* kMotionCmds = "F2";       ///< C1 -> C2 signal
inline constexpr const char* kStepPulses = "F3";       ///< C2 -> C3 signal
inline constexpr const char* kDriveX = "F4";           ///< C3 -> P2 energy
inline constexpr const char* kDriveY = "F5";           ///< C3 -> P3 energy
inline constexpr const char* kDriveZ = "F6";           ///< C3 -> P4 energy
inline constexpr const char* kDriveE = "F7";           ///< C3 -> P5 energy
inline constexpr const char* kLogicPower = "F8";       ///< P1 -> C1 energy
inline constexpr const char* kMotorPower = "F9";       ///< P1 -> C3 energy
inline constexpr const char* kHeaterPwm = "F10";       ///< C1 -> P6 signal
inline constexpr const char* kHeat = "F11";            ///< P6 -> P7 energy
inline constexpr const char* kVibrationX = "F12";      ///< P2 -> P8 energy
inline constexpr const char* kVibrationY = "F13";      ///< P3 -> P8 energy
inline constexpr const char* kVibrationZ = "F14";      ///< P4 -> P8 energy
inline constexpr const char* kVibrationE = "F15";      ///< P5 -> P8 energy
inline constexpr const char* kAcousticX = "F16";       ///< P2 -> P9 energy
inline constexpr const char* kAcousticY = "F17";       ///< P3 -> P9 energy
inline constexpr const char* kAcousticZ = "F18";       ///< P4 -> P9 energy
inline constexpr const char* kAcousticE = "F19";       ///< P5 -> P9 energy
inline constexpr const char* kFrameAcoustic = "F20";   ///< P8 -> P9 energy
inline constexpr const char* kThermalEmission = "F21"; ///< P7 -> P9 energy
inline constexpr const char* kStatusFeedback = "F22";  ///< C1 -> C4 signal
}  // namespace printer_flows

/// Builds the printer architecture of Figure 6 (plus the status-feedback
/// loop F22 that Algorithm 1 must remove).
cpps::Architecture make_printer_architecture();

/// Historical-data coverage matching the paper's experiment: the G/M-code
/// signal flow F1 and the five acoustic energy flows monitored between
/// P2, P3, P4, P5, P8 and the environment P9.
cpps::HistoricalData make_printer_historical_data();

/// The acoustic energy flows monitored in the case study (F16-F20).
std::vector<std::string> monitored_acoustic_flows();

/// Emission channel observed when monitoring one of the acoustic flows:
/// F16-F19 map to the respective motor channels, F20 to the frame channel.
/// Throws ModelError for flows that are not monitored emissions.
EmissionChannel channel_for_printer_flow(const std::string& flow_id);

}  // namespace gansec::am
