// Condition encoding of G/M-code signal flows (paper Section IV-B).
//
// The paper one-hot encodes which stepper motor runs between consecutive
// G-codes G_{t-1} and G_t: X -> [1,0,0], Y -> [0,1,0], Z -> [0,0,1]. It also
// sketches an extension to combinations: "for three physical components and
// their combination, the one-hot encoding can be of size 2^3 = 8".
// Both encodings are implemented here, from either a MotionSegment or a
// consecutive command pair.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gansec/am/machine.hpp"
#include "gansec/math/matrix.hpp"

namespace gansec::am {

enum class ConditionScheme {
  kExclusiveXyz,    ///< 3-wide one-hot; exactly one of X/Y/Z must move
  kCombinationXyz,  ///< 8-wide one-hot over the 2^3 subsets of {X,Y,Z}
};

class ConditionEncoder {
 public:
  explicit ConditionEncoder(
      ConditionScheme scheme = ConditionScheme::kExclusiveXyz);

  ConditionScheme scheme() const { return scheme_; }

  /// Width of the produced one-hot vector (3 or 8).
  std::size_t dimension() const;

  /// Encodes a motion segment. For kExclusiveXyz exactly one of X/Y/Z must
  /// move (throws InvalidArgumentError otherwise, matching the paper's
  /// single-motor case study). For kCombinationXyz any subset is legal.
  std::vector<float> encode(const MotionSegment& segment) const;

  /// Encodes the delta between consecutive commands by running them through
  /// a scratch machine: the encoding of G_t given G_{t-1} (paper's example:
  /// G1 X5 Y5 Z5 -> G1 X10 Y5 Z5 encodes as [1,0,0]).
  std::vector<float> encode_delta(const GcodeCommand& previous,
                                  const GcodeCommand& current,
                                  const PrinterConfig& config) const;

  /// One-hot row as a 1 x dimension() matrix.
  math::Matrix encode_matrix(const MotionSegment& segment) const;

  /// Index of the hot element (class label).
  std::size_t label(const MotionSegment& segment) const;

  /// Human-readable name of a class label ("X", "Y", "Z" or subset names
  /// like "X+Z", "idle").
  std::string label_name(std::size_t label) const;

  /// The canonical condition row for a class label.
  math::Matrix condition_for_label(std::size_t label) const;

 private:
  ConditionScheme scheme_;
};

}  // namespace gansec::am
