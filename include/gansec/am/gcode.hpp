// G/M-code lexer and parser.
//
// "The speed and direction of all the stepper motors are controlled by
// cyber domain instructions written with G-code ... along with M-code"
// (paper Section IV). This parser understands the subset a Cartesian FDM
// printer consumes: a command word (G or M plus integer code) followed by
// parameter words (letter + number), with ';' and '(...)' comments.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace gansec::am {

struct GcodeCommand {
  char letter = 'G';               ///< 'G' or 'M'
  int code = 0;                    ///< e.g. 1 for G1, 104 for M104
  std::map<char, double> params;   ///< parameter words (X, Y, Z, E, F, S...)
  std::string raw;                 ///< original source line (comment-stripped)

  bool has(char param) const { return params.contains(param); }

  /// Parameter value or `fallback` when absent.
  double param(char name, double fallback) const {
    const auto it = params.find(name);
    return it == params.end() ? fallback : it->second;
  }

  bool is(char cmd_letter, int cmd_code) const {
    return letter == cmd_letter && code == cmd_code;
  }
};

/// Parses one line. Throws ParseError on malformed input; returns false via
/// the `empty` overload semantics — use parse_program for comment/blank
/// skipping.
GcodeCommand parse_gcode_line(const std::string& line);

/// True when the line holds no command (blank or comment-only).
bool is_blank_or_comment(const std::string& line);

/// Parses a whole program, skipping blank/comment lines. Line numbers in
/// error messages are 1-based.
std::vector<GcodeCommand> parse_gcode_program(const std::string& text);

}  // namespace gansec::am
