// gansec.model.v1 — the schema-versioned binary checkpoint format.
//
// Algorithm 2 of the paper is "CGAN Model Generation and *Storage*"; this
// module is the storage half done properly: a train-once/serve-many
// container every serving-shaped direction (streaming detector, fleet
// serving, warm-start) loads from. One file holds one object (an Mlp, a
// Cgan, a trainer-resume snapshot, a Parzen scorer):
//
//   [ header | meta (JSON) | padding | payload (tensors) ]
//
// Header — 64 bytes, fixed, little-endian regardless of host:
//   offset  size  field
//        0     8  magic "GANSECM1"
//        8     4  format version (u32, = 1)
//       12     4  header bytes (u32, = 64)
//       16     8  meta offset (u64, = 64)
//       24     8  meta bytes (u64)
//       32     8  payload offset (u64, 64-byte aligned)
//       40     8  payload bytes (u64)
//       48     4  CRC32 (IEEE) of every byte from meta offset to EOF
//       52     4  reserved (u32, = 0)
//       56     8  total file bytes (u64) — catches truncation exactly
//
// Meta — one RFC 8259 object:
//   {"schema":"gansec.model.v1","kind":"cgan",
//    "provenance":{version/git_sha/build_type/compiler/flags, "seeds":{..}},
//    "attrs":{object-specific structure, e.g. the layer list},
//    "tensors":[{"name","dtype","rows","cols","offset","bytes"}, ...]}
//
// Payload — raw tensor bytes in directory order. Every tensor offset
// (relative to the payload start) is 64-byte aligned, and the reader keeps
// the whole file in a 64-byte-aligned buffer, so a tensor view pointer is
// itself 64-byte aligned: scorers (and future mmap/SIMD consumers) bind
// zero-copy without a deserialization pass.
//
// The loader is paranoid by contract: every malformed, truncated,
// bit-flipped, zero-filled or version-bumped input fails with a typed
// gansec::Error — never UB, never a crash. The `ckpt` ctest label proves
// this under ASan against a corruption-mutant battery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gansec/math/matrix.hpp"
#include "gansec/obs/json.hpp"

namespace gansec::model {

/// Schema identifier embedded in every checkpoint's meta block.
inline constexpr const char* kCheckpointSchema = "gansec.model.v1";

/// The 8 magic bytes opening every checkpoint file.
inline constexpr char kCheckpointMagic[8] = {'G', 'A', 'N', 'S',
                                             'E', 'C', 'M', '1'};

/// Current (and only) format version.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Fixed header size in bytes.
inline constexpr std::size_t kHeaderBytes = 64;

/// Alignment guarantee for the payload region and every tensor offset.
inline constexpr std::size_t kTensorAlignment = 64;

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

/// Element types a tensor can carry.
enum class Dtype : std::uint8_t { kF32, kF64, kU8 };

std::size_t dtype_bytes(Dtype dtype);
std::string_view dtype_name(Dtype dtype);
/// Throws ParseError for an unknown dtype string.
Dtype dtype_from_name(std::string_view name);

/// One tensor-directory entry. `offset` is relative to the payload region
/// and always a multiple of kTensorAlignment.
struct TensorInfo {
  std::string name;
  Dtype dtype = Dtype::kF32;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

/// Builds one checkpoint: attrs + seeds + tensors in, bytes/file out.
/// Provenance (git SHA, build flags, version) is captured automatically
/// from obs::build_info().
class CheckpointWriter {
 public:
  /// `kind` names the stored object ("mlp", "cgan", "cgan_trainer",
  /// "parzen", ...); loaders dispatch on it.
  explicit CheckpointWriter(std::string kind);

  /// Object-structure attributes, kept in insertion order. The const
  /// char* overload exists because a string literal would otherwise take
  /// the bool overload (pointer-to-bool is a standard conversion,
  /// string_view construction is not).
  void add_attr(std::string_view key, std::string_view value);
  void add_attr(std::string_view key, const char* value) {
    add_attr(key, std::string_view(value));
  }
  void add_attr(std::string_view key, double value);
  void add_attr(std::string_view key, std::uint64_t value);
  void add_attr(std::string_view key, bool value);
  /// Pre-rendered JSON value (validated at serialization time).
  void add_attr_json(std::string_view key, std::string json_value);

  /// RNG provenance, recorded under provenance.seeds.
  void add_seed(std::string_view name, std::uint64_t seed);

  /// Appends a tensor: payload is copied now, directory entry written at
  /// serialization. Names must be unique; throws InvalidArgumentError on
  /// duplicates or a size/shape mismatch.
  void add_tensor(std::string_view name, Dtype dtype, std::uint64_t rows,
                  std::uint64_t cols, const void* data, std::size_t bytes);
  /// f32 convenience: one matrix, shape taken from it.
  void add_matrix(std::string_view name, const math::Matrix& m);
  /// f64 convenience: a 1 x count vector of doubles.
  void add_f64(std::string_view name, const double* data,
               std::size_t count);
  /// u8 convenience: an opaque byte string (RNG cursors, ...).
  void add_bytes(std::string_view name, std::string_view bytes);

  /// Serializes the complete checkpoint (header + meta + payload).
  std::string to_bytes() const;

  /// Atomic write: serializes to `path + ".tmp"`, fsync-free rename over
  /// `path`. Throws IoError on any filesystem failure.
  void write_file(const std::string& path) const;

 private:
  struct Attr {
    std::string key;
    std::string json_value;
  };

  std::string kind_;
  std::vector<Attr> attrs_;
  std::vector<std::pair<std::string, std::uint64_t>> seeds_;
  std::vector<TensorInfo> tensors_;
  std::string payload_;  ///< concatenated, 64-byte-aligned tensor bytes
};

/// Validated view over one checkpoint. Owns a 64-byte-aligned copy of the
/// file bytes, so tensor views handed out stay alive (and aligned) for the
/// reader's lifetime. All structural validation — magic, version, bounds,
/// CRC, meta grammar, tensor directory — happens in from_bytes()/
/// from_file(); a constructed reader is internally consistent.
class CheckpointReader {
 public:
  /// Parses and validates. Throws ParseError on any structural defect
  /// (bad magic, unsupported version, checksum mismatch, malformed meta,
  /// out-of-range tensor, misaligned offset) and IoError on truncation.
  static CheckpointReader from_bytes(std::string_view bytes);
  /// Reads the whole file then delegates to from_bytes(). Throws IoError
  /// when the file is missing/unreadable.
  static CheckpointReader from_file(const std::string& path);

  CheckpointReader(CheckpointReader&&) noexcept = default;
  CheckpointReader& operator=(CheckpointReader&&) noexcept = default;
  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  const std::string& kind() const { return kind_; }
  std::uint32_t version() const { return version_; }
  std::uint32_t crc() const { return crc_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  std::uint64_t meta_bytes() const { return meta_bytes_; }
  std::uint64_t file_bytes() const { return file_bytes_; }

  /// The parsed meta object (schema/kind/provenance/attrs/tensors).
  const obs::JsonValue& meta() const { return meta_; }
  /// attrs member, or nullptr when the object recorded none.
  const obs::JsonValue* attrs() const { return meta_.find("attrs"); }
  /// provenance member (always present).
  const obs::JsonValue* provenance() const {
    return meta_.find("provenance");
  }

  const std::vector<TensorInfo>& tensors() const { return tensors_; }
  /// Directory lookup; throws ParseError when `name` is absent.
  const TensorInfo& tensor(std::string_view name) const;
  bool has_tensor(std::string_view name) const;

  /// Raw pointer into the aligned in-memory payload for `info`. The
  /// pointer is kTensorAlignment-aligned and valid for the reader's
  /// lifetime.
  const std::byte* tensor_data(const TensorInfo& info) const;

  /// Zero-copy typed views (dtype-checked; throw ParseError on mismatch).
  /// The pointers are 64-byte aligned and live as long as the reader.
  std::pair<const float*, std::size_t> f32_view(std::string_view name) const;
  std::pair<const double*, std::size_t> f64_view(
      std::string_view name) const;
  std::string_view bytes_view(std::string_view name) const;

  /// Owning copy of an f32 tensor as a Matrix (trainable weights must own
  /// their storage; serving-only consumers use the views above instead).
  math::Matrix read_matrix(std::string_view name) const;

  /// Typed attr readers; throw ParseError when absent or mistyped.
  std::string attr_string(std::string_view key) const;
  double attr_number(std::string_view key) const;
  std::uint64_t attr_u64(std::string_view key) const;
  bool attr_bool(std::string_view key) const;

 private:
  CheckpointReader() = default;

  /// File bytes in a 64-byte-aligned buffer.
  struct AlignedDeleter {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kTensorAlignment});
    }
  };
  std::unique_ptr<std::byte[], AlignedDeleter> data_;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t payload_offset_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t meta_bytes_ = 0;
  std::uint32_t version_ = 0;
  std::uint32_t crc_ = 0;
  std::string kind_;
  obs::JsonValue meta_;
  std::vector<TensorInfo> tensors_;
};

}  // namespace gansec::model
