// gansec.model.v1 serializers for the trained-object zoo.
//
// Three object kinds cover the train-once/serve-many lifecycle:
//
//   "mlp"          one network: layer structure in attrs, weights (incl.
//                  BatchNorm running stats and Dropout mask-RNG cursors)
//                  as aligned tensors;
//   "cgan"         topology + generator + discriminator — the Algorithm 2
//                  deliverable the serving path loads;
//   "cgan_trainer" a "cgan" plus the full training state (TrainConfig,
//                  minibatch/noise RNG cursor, Adam/Momentum moments,
//                  iteration counter) so training resumes bit-identically
//                  to an uninterrupted run;
//   "parzen"       a Parzen Gaussian-window scorer: f64 samples that the
//                  loaded scorer binds ZERO-COPY out of the checkpoint
//                  buffer (64-byte aligned, no deserialization pass).
//
// Every load validates structure and checksums via CheckpointReader and
// throws typed gansec::Error on any defect.
#pragma once

#include <string>

#include "gansec/gan/trainer.hpp"
#include "gansec/model/checkpoint.hpp"
#include "gansec/stats/kde.hpp"

namespace gansec::model {

// -- Mlp ---------------------------------------------------------------

/// Records `mlp` into `writer` under tensor names `<prefix>l<i>.<param>`
/// and a `<prefix>layers` structure attr. Used directly by the cgan
/// serializers ("g." / "d." prefixes).
void add_mlp(CheckpointWriter& writer, const nn::Mlp& mlp,
             const std::string& prefix);

/// Rebuilds a network recorded by add_mlp with the same prefix.
nn::Mlp read_mlp(const CheckpointReader& reader, const std::string& prefix);

void save_mlp_checkpoint(const nn::Mlp& mlp, const std::string& path);
nn::Mlp load_mlp_checkpoint(const CheckpointReader& reader);
nn::Mlp load_mlp_checkpoint_file(const std::string& path);

// -- Cgan --------------------------------------------------------------

/// Builds the complete "cgan" writer (topology attrs + both networks);
/// callers may add provenance seeds before writing.
CheckpointWriter make_cgan_writer(const gan::Cgan& model);

void save_cgan_checkpoint(const gan::Cgan& model, const std::string& path);
/// Accepts both "cgan" and "cgan_trainer" checkpoints (a resume snapshot
/// is a superset of a serving model).
gan::Cgan load_cgan_checkpoint(const CheckpointReader& reader);
gan::Cgan load_cgan_checkpoint_file(const std::string& path);

// -- Trainer resume ----------------------------------------------------

/// Persists the trainer's model plus everything needed to continue
/// training bit-identically: TrainConfig, the trainer RNG cursor, both
/// optimizers' moments, and the iteration counter.
void save_trainer_checkpoint(const gan::CganTrainer& trainer,
                             const std::string& path);

/// The TrainConfig recorded in a "cgan_trainer" checkpoint.
gan::TrainConfig read_train_config(const CheckpointReader& reader);

/// Overwrites `trainer`'s RNG cursor, optimizer moments and iteration
/// counter from the checkpoint. The trainer must have been constructed
/// around the checkpoint's model with the checkpoint's TrainConfig:
///
///   auto reader = CheckpointReader::from_file(path);
///   gan::Cgan model = load_cgan_checkpoint(reader);
///   gan::CganTrainer trainer(model, read_train_config(reader));
///   restore_trainer_state(trainer, reader);
///
/// Throws ParseError when the checkpoint's optimizer state does not match
/// the trainer's optimizer kind or parameter shapes.
void restore_trainer_state(gan::CganTrainer& trainer,
                           const CheckpointReader& reader);

// -- Parzen scorer -----------------------------------------------------

void save_parzen_checkpoint(const stats::ParzenScorer& scorer,
                            const std::string& path);

/// A loaded Parzen checkpoint: owns the aligned checkpoint buffer and a
/// scorer viewing the sample tensor in place — the zero-copy serving
/// path. Move-only (the scorer tracks the buffer).
class ParzenCheckpoint {
 public:
  static ParzenCheckpoint from_reader(CheckpointReader reader);
  static ParzenCheckpoint load(const std::string& path);

  ParzenCheckpoint(ParzenCheckpoint&&) noexcept = default;
  ParzenCheckpoint& operator=(ParzenCheckpoint&&) noexcept = default;

  const stats::ParzenScorer& scorer() const { return scorer_; }
  /// The checkpoint-buffer sample pointer the scorer binds to (exposed so
  /// tests can assert the zero-copy property).
  const double* samples_data() const { return samples_; }
  const CheckpointReader& reader() const { return reader_; }

 private:
  ParzenCheckpoint(CheckpointReader reader, const double* samples,
                   std::size_t count, double bandwidth)
      : reader_(std::move(reader)),
        samples_(samples),
        scorer_(samples_, count, bandwidth) {}

  CheckpointReader reader_;
  const double* samples_;
  stats::ParzenScorer scorer_;
};

}  // namespace gansec::model
