// Per-flow-pair model registry — the "Storage" half of Algorithm 2
// ("CGAN Model Generation and Storage"), v2.
//
// Algorithm 2 trains one conditional model per flow pair from Algorithm 1
// and stores each trained generator/discriminator: "At the end, G learned
// for each flow pair is returned and stored." The registry keeps those
// models as gansec.model.v1 checkpoints in one directory:
//
//   <dir>/manifest.json          "gansec.registry.v2" manifest
//   <dir>/<key>.g<N>.gsm         checkpoint for generation N of a pair
//
// Each save creates a NEW generation (monotonic per-pair counter — no
// timestamps, so concurrent sweeps with fixed seeds stay byte-for-byte
// reproducible) and both the checkpoint and the manifest are written
// atomically (tmp + rename), so a reader never observes a half-written
// file and a crashed save leaves the previous generation intact. Serving
// processes hot-swap by re-calling load_latest: the manifest flips to the
// new generation only after its checkpoint is fully on disk.
//
// The manifest records each entry's byte size, CRC32 and builder git SHA;
// load cross-checks size and CRC against the checkpoint's own header, so
// a swapped or corrupted file fails typed even when the file is itself a
// well-formed checkpoint.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "gansec/cpps/flow.hpp"
#include "gansec/gan/cgan.hpp"

namespace gansec::model {

/// Manifest schema identifier.
inline constexpr const char* kRegistrySchema = "gansec.registry.v2";

/// Checkpoint file extension used by the registry (and the CLI).
inline constexpr const char* kCheckpointExtension = ".gsm";

class ModelRegistry {
 public:
  /// One manifest record: a (pair, generation) -> file binding plus the
  /// integrity facts load verifies.
  struct Entry {
    cpps::FlowPair pair;
    std::string file;            ///< filename relative to the directory
    std::uint64_t generation = 0;
    std::uint64_t bytes = 0;     ///< checkpoint file size
    std::uint32_t crc32 = 0;     ///< checkpoint header CRC (meta+payload)
    std::string git_sha;         ///< builder provenance
  };

  /// Opens (and creates if needed) the registry directory. Keeps the
  /// newest `retain_generations` generations per pair (older checkpoints
  /// are pruned on save); must be >= 1.
  explicit ModelRegistry(std::filesystem::path directory,
                         std::size_t retain_generations = 2);

  const std::filesystem::path& directory() const { return dir_; }
  std::size_t retain_generations() const { return retain_; }

  /// Filesystem-safe key for a pair, e.g. "F1__F16".
  static std::string key_for(const cpps::FlowPair& pair);

  /// True when at least one generation for the pair is registered.
  bool contains(const cpps::FlowPair& pair) const;

  /// Newest registered generation for the pair (0 when none).
  std::uint64_t latest_generation(const cpps::FlowPair& pair) const;

  /// Persists a trained model as the pair's next generation: atomic
  /// checkpoint write, then atomic manifest update, then pruning of
  /// generations beyond the retention window. Returns the new entry.
  Entry save(const cpps::FlowPair& pair, const gan::Cgan& model);

  /// Loads the newest generation; throws IoError when the pair has no
  /// registered model and ParseError when the checkpoint on disk does not
  /// match its manifest record (size/CRC).
  gan::Cgan load(const cpps::FlowPair& pair) const;
  /// Serving-path alias of load(): re-call to pick up a hot-swapped model.
  gan::Cgan load_latest(const cpps::FlowPair& pair) const;
  /// Loads a specific generation; throws IoError when absent.
  gan::Cgan load_generation(const cpps::FlowPair& pair,
                            std::uint64_t generation) const;

  /// Removes every generation for the pair; no-op when absent.
  void remove(const cpps::FlowPair& pair);

  /// Distinct pairs in first-registered order.
  std::vector<cpps::FlowPair> list() const;

  /// All manifest records in manifest order.
  std::vector<Entry> entries() const;

 private:
  std::vector<Entry> read_manifest() const;
  void write_manifest(const std::vector<Entry>& entries) const;
  gan::Cgan load_entry(const Entry& entry) const;
  std::filesystem::path manifest_path() const;

  std::filesystem::path dir_;
  std::size_t retain_;
};

}  // namespace gansec::model
