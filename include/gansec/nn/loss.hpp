// Loss functions for batched predictions.
//
// Each loss provides `value` (scalar averaged over the batch) and `gradient`
// (dLoss/dPrediction, already divided by the batch size so optimizers see a
// per-batch-mean gradient).
#pragma once

#include "gansec/math/matrix.hpp"

namespace gansec::nn {

/// Binary cross entropy: -mean(t*log(p) + (1-t)*log(1-p)).
/// Predictions are clamped to [eps, 1-eps] for numerical safety.
class BinaryCrossEntropy {
 public:
  explicit BinaryCrossEntropy(float eps = 1e-7F) : eps_(eps) {}

  double value(const math::Matrix& predictions,
               const math::Matrix& targets) const;
  math::Matrix gradient(const math::Matrix& predictions,
                        const math::Matrix& targets) const;
  /// Destination-passing gradient: writes into `out` (resized in place).
  void gradient_into(math::Matrix& out, const math::Matrix& predictions,
                     const math::Matrix& targets) const;

 private:
  float eps_;
};

/// Softmax cross entropy over logits with one-hot targets:
/// -mean_rows(log softmax(logits)[target]). The gradient folds the softmax
/// Jacobian: (softmax(logits) - targets) / batch.
class SoftmaxCrossEntropy {
 public:
  double value(const math::Matrix& logits,
               const math::Matrix& one_hot_targets) const;
  math::Matrix gradient(const math::Matrix& logits,
                        const math::Matrix& one_hot_targets) const;
};

/// Row-wise softmax (numerically stable).
math::Matrix softmax_rows(const math::Matrix& logits);

/// Mean squared error: mean((p - t)^2).
class MeanSquaredError {
 public:
  double value(const math::Matrix& predictions,
               const math::Matrix& targets) const;
  math::Matrix gradient(const math::Matrix& predictions,
                        const math::Matrix& targets) const;
  /// Destination-passing gradient: writes into `out` (resized in place).
  void gradient_into(math::Matrix& out, const math::Matrix& predictions,
                     const math::Matrix& targets) const;
};

}  // namespace gansec::nn
