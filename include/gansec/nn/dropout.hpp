// Inverted dropout regularization layer.
#pragma once

#include <cstdint>

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

/// Inverted dropout: at train time each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate) so that
/// inference requires no rescaling. The mask RNG is owned by the layer and
/// seeded explicitly for reproducibility.
class Dropout : public Layer {
 public:
  explicit Dropout(float rate, std::uint64_t seed = 0xD20);

  /// In eval mode (or with rate 0) dropout is the identity and the
  /// returned reference is `input` itself — no copy is made.
  const math::Matrix& forward(const math::Matrix& input,
                              bool training) override;
  const math::Matrix& backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "dropout"; }
  std::unique_ptr<Layer> clone() const override;

  float rate() const { return rate_; }
  std::uint64_t seed() const { return seed_; }

  /// The mask RNG, exposed so training checkpoints can persist/restore
  /// its exact cursor (a reseeded mask stream would diverge on resume).
  math::Rng& mask_rng() { return rng_; }
  const math::Rng& mask_rng() const { return rng_; }

 private:
  float rate_;
  std::uint64_t seed_;
  math::Rng rng_;
  math::Matrix last_mask_;
  bool last_training_ = false;
  math::Matrix out_;
  math::Matrix grad_in_;
};

}  // namespace gansec::nn
