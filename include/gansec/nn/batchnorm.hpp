// 1-D batch normalization (Ioffe & Szegedy 2015).
//
// Normalizes each feature over the batch at train time (tracking running
// statistics for inference), then applies a learned affine transform.
// Available as an optional generator stabilizer in the CGAN topology.
#pragma once

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t features, float momentum = 0.1F,
                     float eps = 1e-5F);

  const math::Matrix& forward(const math::Matrix& input,
                              bool training) override;
  const math::Matrix& backward(const math::Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void init_weights(math::Rng& rng) override;
  std::string kind() const override { return "batch_norm"; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t features() const { return gamma_.value.cols(); }
  float momentum() const { return momentum_; }
  float eps() const { return eps_; }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Parameter& gamma() const { return gamma_; }
  const Parameter& beta() const { return beta_; }
  math::Matrix& running_mean() { return running_mean_; }
  math::Matrix& running_var() { return running_var_; }
  const math::Matrix& running_mean() const { return running_mean_; }
  const math::Matrix& running_var() const { return running_var_; }

 private:
  Parameter gamma_;  // 1 x features, scale
  Parameter beta_;   // 1 x features, shift
  float momentum_;
  float eps_;
  math::Matrix running_mean_;  // 1 x features
  math::Matrix running_var_;   // 1 x features

  // Forward cache for backward, plus reusable result buffers. The input
  // itself is never needed by backward (xhat carries everything), so it is
  // not copied.
  math::Matrix last_xhat_;
  math::Matrix last_mean_;
  math::Matrix last_var_;
  bool last_training_ = false;
  math::Matrix out_;
  math::Matrix grad_in_;
};

}  // namespace gansec::nn
