// Gradient-descent optimizers operating on Parameter lists.
//
// Algorithm 2 of the paper alternates stochastic-gradient *ascent* on the
// discriminator with *descent* on the generator. Both are expressed here as
// descent on the corresponding minimization objective; the trainer forms the
// correctly signed gradients.
#pragma once

#include <cstddef>
#include <vector>

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently accumulated in the
  /// parameters, then leaves gradients untouched (call zero_grad()).
  virtual void step() = 0;

  /// Clears accumulated gradients on all managed parameters.
  void zero_grad();

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// Plain SGD: w -= lr * g.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float learning_rate);
  void step() override;
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
};

/// Classical momentum: v = mu*v + g ; w -= lr * v.
class Momentum : public Optimizer {
 public:
  Momentum(std::vector<Parameter*> params, float learning_rate,
           float momentum = 0.9F);
  void step() override;

  /// Internal state, exposed for exact-resume checkpointing (one velocity
  /// matrix per managed parameter, parameter order).
  const std::vector<math::Matrix>& velocity() const { return velocity_; }
  std::vector<math::Matrix>& velocity() { return velocity_; }

 private:
  float lr_;
  float mu_;
  std::vector<math::Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float learning_rate,
       float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-8F);
  void step() override;

  /// Internal state, exposed for exact-resume checkpointing: the bias-
  /// correction step count and the first/second moment estimates (one
  /// matrix per managed parameter, parameter order).
  std::size_t step_count() const { return t_; }
  void set_step_count(std::size_t t) { t_ = t; }
  const std::vector<math::Matrix>& moment1() const { return m_; }
  std::vector<math::Matrix>& moment1() { return m_; }
  const std::vector<math::Matrix>& moment2() const { return v_; }
  std::vector<math::Matrix>& moment2() { return v_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  std::size_t t_ = 0;
  std::vector<math::Matrix> m_;
  std::vector<math::Matrix> v_;
};

}  // namespace gansec::nn
