// Text (de)serialization of Mlp networks.
//
// Trained CGAN generators are persisted per flow pair (Algorithm 2 "Model
// Generation and Storage"). The format is a line-oriented text format:
//
//   gansec-mlp 1
//   layers <N>
//   <layer records...>
//   end
//
// Layer records: "dense <in> <out> <scheme>" followed by in*out weight
// values and out bias values; "relu"; "leaky_relu <slope>"; "tanh";
// "sigmoid"; "dropout <rate> <seed>".
#pragma once

#include <iosfwd>
#include <string>

#include "gansec/nn/mlp.hpp"

namespace gansec::nn {

/// Writes the full network (architecture + weights) to a stream.
void save_mlp(const Mlp& mlp, std::ostream& os);

/// Reads a network written by save_mlp. Throws ParseError on malformed
/// input and IoError on premature end of stream.
Mlp load_mlp(std::istream& is);

/// Convenience file wrappers.
void save_mlp_file(const Mlp& mlp, const std::string& path);
Mlp load_mlp_file(const std::string& path);

}  // namespace gansec::nn
