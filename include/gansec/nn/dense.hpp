// Fully connected layer with selectable weight initialization.
#pragma once

#include <cstddef>

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

/// Weight initialization schemes. Xavier suits tanh/sigmoid stacks, He suits
/// ReLU-family stacks.
enum class InitScheme { kXavierUniform, kHeNormal };

class Dense : public Layer {
 public:
  /// Creates an `inputs -> outputs` affine layer with zero weights; call
  /// init_weights() (directly or via Mlp) before training.
  Dense(std::size_t inputs, std::size_t outputs,
        InitScheme scheme = InitScheme::kXavierUniform);

  const math::Matrix& forward(const math::Matrix& input,
                              bool training) override;
  const math::Matrix& backward(const math::Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void init_weights(math::Rng& rng) override;
  std::string kind() const override { return "dense"; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t inputs() const { return weight_.value.rows(); }
  std::size_t outputs() const { return weight_.value.cols(); }
  InitScheme scheme() const { return scheme_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

 private:
  Parameter weight_;  // inputs x outputs
  Parameter bias_;    // 1 x outputs
  InitScheme scheme_;
  // Borrowed view of the last forward() input (no copy). The batch-size
  // cache lets backward() validate shapes without touching the pointer,
  // which may dangle if the caller passed a temporary.
  const math::Matrix* last_input_ = nullptr;
  std::size_t last_input_rows_ = 0;
  math::Matrix out_;            // forward result
  math::Matrix grad_in_;        // backward result
  math::Matrix wgrad_scratch_;  // X^T * dL/dY before accumulation
  math::Matrix bgrad_scratch_;  // column sums before accumulation
};

}  // namespace gansec::nn
