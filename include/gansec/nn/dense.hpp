// Fully connected layer with selectable weight initialization.
#pragma once

#include <cstddef>

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

/// Weight initialization schemes. Xavier suits tanh/sigmoid stacks, He suits
/// ReLU-family stacks.
enum class InitScheme { kXavierUniform, kHeNormal };

class Dense : public Layer {
 public:
  /// Creates an `inputs -> outputs` affine layer with zero weights; call
  /// init_weights() (directly or via Mlp) before training.
  Dense(std::size_t inputs, std::size_t outputs,
        InitScheme scheme = InitScheme::kXavierUniform);

  math::Matrix forward(const math::Matrix& input, bool training) override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void init_weights(math::Rng& rng) override;
  std::string kind() const override { return "dense"; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t inputs() const { return weight_.value.rows(); }
  std::size_t outputs() const { return weight_.value.cols(); }
  InitScheme scheme() const { return scheme_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

 private:
  Parameter weight_;  // inputs x outputs
  Parameter bias_;    // 1 x outputs
  InitScheme scheme_;
  math::Matrix last_input_;
};

}  // namespace gansec::nn
