// Sequential multilayer perceptron container.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

/// An ordered stack of layers with whole-network forward/backward passes.
/// Copyable via clone() (deep copy of all layers and weights).
class Mlp {
 public:
  Mlp() = default;
  Mlp(Mlp&&) noexcept = default;
  Mlp& operator=(Mlp&&) noexcept = default;
  Mlp(const Mlp& other) { *this = other.clone(); }
  Mlp& operator=(const Mlp& other) {
    if (this != &other) *this = other.clone();
    return *this;
  }

  /// Appends a layer and returns a reference to it.
  Layer& add(std::unique_ptr<Layer> layer);

  /// Constructs a layer in place: mlp.emplace<Dense>(10, 20).
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Full forward pass over a batch (rows = samples). Returns a reference
  /// to the last layer's output buffer — valid until the next forward()
  /// through this network; copy it to keep values across calls.
  const math::Matrix& forward(const math::Matrix& input,
                              bool training = false);

  /// Full backward pass; returns dLoss/dInput (a reference to the first
  /// layer's gradient buffer) and accumulates parameter gradients. Must
  /// follow a forward() with the same batch.
  const math::Matrix& backward(const math::Matrix& grad_output);

  /// All trainable parameters in layer order.
  std::vector<Parameter*> parameters();

  /// Clears all accumulated gradients.
  void zero_grad();

  /// Re-randomizes all trainable layers.
  void init_weights(math::Rng& rng);

  /// Deep copy including current weights.
  Mlp clone() const;

  /// Total number of trainable scalars.
  std::size_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace gansec::nn
