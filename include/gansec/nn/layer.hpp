// Layer abstraction for the minimal deep-learning stack.
//
// GAN-Sec's CGAN (Section III, Algorithm 2 of the paper) is built from
// multilayer perceptrons. Layers implement explicit forward/backward passes
// over batches (rows = samples). Trainable layers expose their Parameters so
// optimizers can update them in place.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gansec/math/matrix.hpp"
#include "gansec/math/rng.hpp"

namespace gansec::nn {

/// A trainable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  math::Matrix value;
  math::Matrix grad;

  Parameter(std::string param_name, math::Matrix initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.rows(), value.cols(), 0.0F) {}

  /// Zeroes the gradient in place, reusing its existing storage.
  void zero_grad() {
    grad.resize(value.rows(), value.cols());
    grad.fill(0.0F);
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = samples). `training`
  /// toggles train-time behaviour (e.g. dropout masking).
  ///
  /// Returns a reference to a buffer owned by the layer (or, for pass-through
  /// layers like eval-mode Dropout, to `input` itself). The reference stays
  /// valid until the next forward() call on this layer; copy it if you need
  /// the values across calls. Layers may also keep a borrowed pointer to
  /// `input` until the matching backward() — keep the input alive (and
  /// unmodified) across the forward/backward pair.
  virtual const math::Matrix& forward(const math::Matrix& input,
                                      bool training) = 0;

  /// Propagates the loss gradient. `grad_output` is dLoss/dOutput for the
  /// most recent forward() batch; returns dLoss/dInput as a reference to a
  /// layer-owned buffer (valid until the next backward() call). Trainable
  /// layers accumulate into their Parameter::grad as a side effect.
  virtual const math::Matrix& backward(const math::Matrix& grad_output) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Re-randomizes trainable state; no-op for stateless layers.
  virtual void init_weights(math::Rng& /*rng*/) {}

  /// Stable identifier used by the serializer ("dense", "relu", ...).
  virtual std::string kind() const = 0;

  /// Deep copy (used to checkpoint the generator during training).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace gansec::nn
