// Elementwise activation layers: ReLU, LeakyReLU, Tanh, Sigmoid.
#pragma once

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

class Relu : public Layer {
 public:
  math::Matrix forward(const math::Matrix& input, bool training) override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  math::Matrix last_input_;
};

class LeakyRelu : public Layer {
 public:
  explicit LeakyRelu(float negative_slope = 0.2F);
  math::Matrix forward(const math::Matrix& input, bool training) override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "leaky_relu"; }
  std::unique_ptr<Layer> clone() const override;
  float negative_slope() const { return slope_; }

 private:
  float slope_;
  math::Matrix last_input_;
};

class Tanh : public Layer {
 public:
  math::Matrix forward(const math::Matrix& input, bool training) override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "tanh"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  math::Matrix last_output_;
};

class Sigmoid : public Layer {
 public:
  math::Matrix forward(const math::Matrix& input, bool training) override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "sigmoid"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  math::Matrix last_output_;
};

}  // namespace gansec::nn
