// Elementwise activation layers: ReLU, LeakyReLU, Tanh, Sigmoid.
//
// All four derivatives are recoverable from the forward *output* (for the
// ReLU family, sign(y) == sign(x)), so the layers cache only their output
// buffer — no input copy — and reuse the same out/grad buffers across
// iterations.
#pragma once

#include "gansec/nn/layer.hpp"

namespace gansec::nn {

class Relu : public Layer {
 public:
  const math::Matrix& forward(const math::Matrix& input,
                              bool training) override;
  const math::Matrix& backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  math::Matrix out_;
  math::Matrix grad_in_;
};

class LeakyRelu : public Layer {
 public:
  explicit LeakyRelu(float negative_slope = 0.2F);
  const math::Matrix& forward(const math::Matrix& input,
                              bool training) override;
  const math::Matrix& backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "leaky_relu"; }
  std::unique_ptr<Layer> clone() const override;
  float negative_slope() const { return slope_; }

 private:
  float slope_;
  math::Matrix out_;
  math::Matrix grad_in_;
};

class Tanh : public Layer {
 public:
  const math::Matrix& forward(const math::Matrix& input,
                              bool training) override;
  const math::Matrix& backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "tanh"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  math::Matrix out_;
  math::Matrix grad_in_;
};

class Sigmoid : public Layer {
 public:
  const math::Matrix& forward(const math::Matrix& input,
                              bool training) override;
  const math::Matrix& backward(const math::Matrix& grad_output) override;
  std::string kind() const override { return "sigmoid"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  math::Matrix out_;
  math::Matrix grad_in_;
};

}  // namespace gansec::nn
