// Naive-Bayes Parzen classifier on raw training data — the no-GAN baseline.
//
// Fits one Parzen window per (class, feature) directly on the observed
// emissions and classifies by maximum summed log density. This is what an
// attacker without the CGAN would do; the gap to the CGAN-based attacker
// isolates the generative model's contribution.
#pragma once

#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/stats/kde.hpp"

namespace gansec::baseline {

class KdeClassifier {
 public:
  /// Fits per-(class, feature) Parzen models; every class present in the
  /// dataset needs at least one sample.
  KdeClassifier(const am::LabeledDataset& train, double bandwidth);

  std::size_t classes() const { return models_.size(); }
  std::size_t feature_dim() const { return feature_dim_; }
  double bandwidth() const { return bandwidth_; }

  /// Summed per-feature log density of one row under one class.
  double log_likelihood(const math::Matrix& features, std::size_t row,
                        std::size_t cls) const;

  /// Argmax class per row.
  std::vector<std::size_t> predict(const math::Matrix& features) const;

  /// Fraction of correctly classified rows.
  double evaluate(const am::LabeledDataset& data) const;

 private:
  std::size_t feature_dim_;
  double bandwidth_;
  std::vector<std::vector<stats::ParzenKde>> models_;  // [class][feature]
};

}  // namespace gansec::baseline
