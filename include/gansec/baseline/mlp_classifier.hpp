// Supervised MLP condition classifier — a baseline the CGAN approach is
// compared against.
//
// GAN-Sec's attacker infers the condition through the generator's
// conditional distribution. The direct alternative is a discriminative
// classifier trained on the same (emission, condition) pairs. Comparing
// the two quantifies what the generative model buys (the paper argues the
// generator "never sees the real data [and] estimates the distribution
// without overfitting on the currently limited data").
#pragma once

#include <cstdint>
#include <vector>

#include "gansec/am/dataset.hpp"
#include "gansec/nn/mlp.hpp"

namespace gansec::baseline {

struct MlpClassifierConfig {
  std::vector<std::size_t> hidden = {64, 64};
  float learning_rate = 1e-3F;
  std::size_t epochs = 200;
  std::size_t batch_size = 32;
  float dropout = 0.0F;
};

class MlpClassifier {
 public:
  MlpClassifier(std::size_t feature_dim, std::size_t classes,
                MlpClassifierConfig config = MlpClassifierConfig{},
                std::uint64_t seed = 0xBA5E);

  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t classes() const { return classes_; }

  /// Trains with Adam + softmax cross entropy; returns per-epoch mean loss.
  std::vector<double> train(const am::LabeledDataset& data);

  /// Class probabilities (rows x classes).
  math::Matrix predict_proba(const math::Matrix& features);

  /// Argmax class per row.
  std::vector<std::size_t> predict(const math::Matrix& features);

  /// Fraction of correctly classified rows.
  double evaluate(const am::LabeledDataset& data);

 private:
  std::size_t feature_dim_;
  std::size_t classes_;
  MlpClassifierConfig config_;
  nn::Mlp net_;
  math::Rng rng_;
  // Minibatch scratch, reused across batches/epochs.
  std::vector<std::size_t> idx_;
  math::Matrix x_;
  math::Matrix t_;
};

}  // namespace gansec::baseline
