// Dense row-major single-precision matrix.
//
// This is the numeric workhorse of the neural-network substrate. It is a
// deliberately small, dependency-free value type: data lives in a
// std::vector<float>, all shape errors throw gansec::DimensionError, and the
// operations provided are exactly those the MLP/CGAN stack needs (GEMM,
// transposition, elementwise arithmetic, broadcasting a bias row, row/column
// reductions, slicing and stacking).
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace gansec::math {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F);

  /// Build from a nested brace list; all rows must have equal length.
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<float>> rows);

  /// Build a 1 x n row vector from a flat vector.
  static Matrix row_vector(const std::vector<float>& values);

  /// Build an n x 1 column vector from a flat vector.
  static Matrix column_vector(const std::vector<float>& values);

  /// Identity matrix of size n x n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws DimensionError when out of range.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Reshapes to rows x cols, reusing the existing heap buffer whenever its
  /// capacity suffices (the destination-passing kernels rely on this for
  /// zero-allocation steady states). Existing elements are preserved in
  /// linear order up to min(old, new) size; any new tail elements are
  /// zero. Not a view: data stays owned and contiguous.
  void resize(std::size_t rows, std::size_t cols);

  /// Sets every element to `value`.
  void fill(float value);

  /// Elements the underlying buffer can hold without reallocating.
  std::size_t capacity() const { return data_.capacity(); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Elementwise arithmetic. Shapes must match exactly.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  /// Scalar arithmetic.
  Matrix& operator*=(float scalar);
  Matrix& operator+=(float scalar);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend Matrix operator*(Matrix lhs, float scalar) {
    lhs *= scalar;
    return lhs;
  }
  friend Matrix operator*(float scalar, Matrix rhs) {
    rhs *= scalar;
    return rhs;
  }

  /// Elementwise (Hadamard) product.
  /// Thin wrapper over math::hadamard_into (see math/kernels.hpp).
  static Matrix hadamard(const Matrix& a, const Matrix& b);

  /// Matrix product: (m x k) * (k x n) -> (m x n). Above a size threshold
  /// the product is row-blocked across the process-wide thread pool (see
  /// core::ExecutionConfig); each output element is still accumulated in a
  /// fixed order, so results are bit-identical at any thread count.
  /// Thin wrapper over math::matmul_into (see math/kernels.hpp).
  static Matrix matmul(const Matrix& a, const Matrix& b);

  /// a * b^T without materializing the transpose: (m x k) * (n x k)^T.
  /// Parallel above the same threshold as matmul, with the same exactness.
  static Matrix matmul_transposed_b(const Matrix& a, const Matrix& b);

  /// a^T * b without materializing the transpose: (k x m)^T * (k x n).
  /// Parallel above the same threshold as matmul, with the same exactness.
  static Matrix matmul_transposed_a(const Matrix& a, const Matrix& b);

  Matrix transposed() const;

  /// Adds `row` (1 x cols) to every row of this matrix (bias broadcast).
  Matrix& add_row_broadcast(const Matrix& row);

  /// Returns a copy of row r as a 1 x cols matrix.
  Matrix row(std::size_t r) const;

  /// Overwrites row r with the 1 x cols matrix `values`.
  void set_row(std::size_t r, const Matrix& values);

  /// Column sums as a 1 x cols matrix.
  Matrix col_sums() const;

  /// Row sums as a rows x 1 matrix.
  Matrix row_sums() const;

  float sum() const;
  float mean() const;
  float min() const;
  float max() const;

  /// True when every element is finite (no NaN/Inf).
  bool all_finite() const;

  /// Elementwise transform; returns a new matrix.
  Matrix map(const std::function<float(float)>& fn) const;

  /// Elementwise transform in place.
  void apply(const std::function<float(float)>& fn);

  /// Columns [c_begin, c_end) as a new matrix.
  Matrix slice_cols(std::size_t c_begin, std::size_t c_end) const;

  /// Rows [r_begin, r_end) as a new matrix.
  Matrix slice_rows(std::size_t r_begin, std::size_t r_end) const;

  /// Horizontal concatenation: [a | b]; row counts must match.
  static Matrix hstack(const Matrix& a, const Matrix& b);

  /// Vertical concatenation: [a ; b]; column counts must match.
  static Matrix vstack(const Matrix& a, const Matrix& b);

  /// Gathers the given rows (in order) into a new matrix.
  Matrix gather_rows(const std::vector<std::size_t>& indices) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Prints a matrix as rows of space-separated values (debugging aid).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace gansec::math
