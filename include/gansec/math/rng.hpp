// Deterministic seeded random number generation.
//
// Every stochastic component in GAN-Sec (noise prior Z, weight
// initialization, minibatch sampling, the acoustic simulator's measurement
// noise) draws from an explicitly seeded Rng so that experiments are
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "gansec/math/matrix.hpp"

namespace gansec::math {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal scaled to N(mean, stddev^2).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// `count` distinct indices drawn uniformly from [0, population).
  /// Throws InvalidArgumentError when count > population.
  std::vector<std::size_t> sample_indices(std::size_t population,
                                          std::size_t count);

  /// `count` indices drawn uniformly *with* replacement from [0, population).
  std::vector<std::size_t> sample_indices_with_replacement(
      std::size_t population, std::size_t count);

  /// Destination-passing form of sample_indices_with_replacement: fills
  /// `out` (resized to `count`) with the exact same draw sequence, reusing
  /// its capacity across calls.
  void sample_indices_with_replacement_into(std::vector<std::size_t>& out,
                                            std::size_t population,
                                            std::size_t count);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// rows x cols matrix of U(lo, hi) draws.
  Matrix uniform_matrix(std::size_t rows, std::size_t cols, float lo,
                        float hi);

  /// rows x cols matrix of N(mean, stddev^2) draws.
  Matrix normal_matrix(std::size_t rows, std::size_t cols, float mean,
                       float stddev);

  /// Destination-passing form of uniform_matrix: resizes `out` and fills
  /// it with the exact same draw sequence (bit-identical stream).
  void fill_uniform(Matrix& out, std::size_t rows, std::size_t cols,
                    float lo, float hi);

  /// Destination-passing form of normal_matrix (bit-identical stream).
  void fill_normal(Matrix& out, std::size_t rows, std::size_t cols,
                   float mean, float stddev);

  /// Direct access for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

  /// Serializes the engine's exact position in its stream (the standard
  /// textual mt19937_64 state). restore_state() resumes the identical
  /// draw sequence — the "RNG cursor" persisted by training checkpoints.
  /// Throws ParseError when `state` is not a valid engine state.
  std::string save_state() const;
  void restore_state(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64-derived child seed: a pure function of (seed, stream) with
/// full avalanche, so independent RNG streams can be handed to concurrent
/// workers (one stream per flow pair, per checkpoint, ...) and the results
/// stay independent of scheduling order. stream 0, 1, 2, ... give unrelated
/// seeds even for adjacent base seeds.
std::uint64_t split_seed(std::uint64_t seed, std::uint64_t stream);

}  // namespace gansec::math
