// Destination-passing numeric kernels.
//
// Every kernel writes its result into a caller-supplied `out` matrix,
// resizing it when necessary (a resize into an already-large-enough buffer
// is free: std::vector keeps its capacity). This is the zero-allocation
// substrate under the Matrix value API — the training hot loop calls these
// directly with buffers owned by layers, trainers, or a per-thread
// Workspace, so the steady state performs no heap allocation at all.
//
// Contracts shared by all kernels:
//  - Shape errors throw gansec::DimensionError.
//  - GEMM kernels (`matmul_into` family) forbid `out` aliasing an operand
//    and throw InvalidArgumentError if it does; elementwise kernels allow
//    `out` to alias either operand (they stream index-ascending).
//  - Accumulation order is identical to the serial loop at any thread
//    count (row-blocked chunking, k-ascending accumulation), so results
//    are bit-identical whether or not the process-wide pool is engaged —
//    the same exactness contract the Matrix wrappers have always had.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "gansec/math/matrix.hpp"

namespace gansec::math {

/// out = a * b, (m x k) * (k x n) -> (m x n). Parallel above a fixed
/// flop threshold; bit-identical at any thread count.
void matmul_into(Matrix& out, const Matrix& a, const Matrix& b);

/// out = a^T * b without materializing the transpose: (k x m)^T * (k x n).
void matmul_transposed_a_into(Matrix& out, const Matrix& a, const Matrix& b);

/// out = a * b^T without materializing the transpose: (m x k) * (n x k)^T.
void matmul_transposed_b_into(Matrix& out, const Matrix& a, const Matrix& b);

/// out = a + b (elementwise). `out` may alias `a` or `b`.
void add_into(Matrix& out, const Matrix& a, const Matrix& b);

/// out = a - b (elementwise). `out` may alias `a` or `b`.
void sub_into(Matrix& out, const Matrix& a, const Matrix& b);

/// out = a * scalar. `out` may alias `a`.
void scale_into(Matrix& out, const Matrix& a, float scalar);

/// out = a .* b (Hadamard product). `out` may alias `a` or `b`.
void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b);

/// out = 1 x cols row of per-column sums of `a` (row-ascending
/// accumulation, matching Matrix::col_sums). `out` must not alias `a`.
void col_sums_into(Matrix& out, const Matrix& a);

/// out = [a | b] (horizontal concatenation). `out` must not alias a or b.
void hstack_into(Matrix& out, const Matrix& a, const Matrix& b);

/// out = src rows gathered in `indices` order. `out` must not alias `src`.
void gather_rows_into(Matrix& out, const Matrix& src,
                      const std::vector<std::size_t>& indices);

/// out = columns [c_begin, c_end) of src. `out` must not alias `src`.
void slice_cols_into(Matrix& out, const Matrix& src, std::size_t c_begin,
                     std::size_t c_end);

/// Copies src into out (capacity-reusing; equivalent to out = src).
void copy_into(Matrix& out, const Matrix& src);

// gansec-lint: hot-path

/// out[i] = fn(in[i]) for every element, index-ascending. `out` may alias
/// `in`. The functor is a template parameter, not std::function, so the
/// per-element call inlines — this replaces Matrix::map/apply on hot paths.
template <typename Fn>
void transform_into(Matrix& out, const Matrix& in, Fn&& fn) {
  out.resize(in.rows(), in.cols());
  const float* src = in.data();
  float* dst = out.data();
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = fn(src[i]);
}

/// m[i] = fn(m[i]) in place, index-ascending.
template <typename Fn>
void transform_in_place(Matrix& m, Fn&& fn) {
  float* dst = m.data();
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = fn(dst[i]);
}

// gansec-lint: end-hot-path

}  // namespace gansec::math
