// Descriptive statistics over double-precision samples.
//
// Used by the DSP feature pipeline, the Parzen KDE, and the experiment
// harnesses. All functions throw InvalidArgumentError on empty input.
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::math {

double mean(const std::vector<double>& xs);

/// Population variance (divides by n).
double variance(const std::vector<double>& xs);

/// Sample variance (divides by n-1); requires at least two samples.
double sample_variance(const std::vector<double>& xs);

double stddev(const std::vector<double>& xs);

double min_value(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);

/// Median via nth_element (copies its input).
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Pearson correlation coefficient; requires equal non-empty sizes.
double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// Population covariance; requires equal non-empty sizes.
double covariance(const std::vector<double>& xs,
                  const std::vector<double>& ys);

}  // namespace gansec::math
