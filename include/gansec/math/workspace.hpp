// Per-thread workspace arena for iteration-scoped numeric scratch.
//
// A Workspace hands out shape-checked scratch buffers (float matrices and
// double vectors) from a bump-cursor arena. The slots are never destroyed:
// `reset()` — or the RAII `Workspace::Scope` — only rewinds the cursor, so
// a loop that acquires the same shapes in the same order every iteration
// reuses the same backing storage and performs zero heap allocations after
// its first pass. `Workspace::local()` returns one arena per thread, so
// concurrent trainers (the flow-pair sweep) never contend.
//
// Ownership rules (see DESIGN.md "Zero-allocation numeric substrate"):
//  - A reference returned by acquire() stays valid for the life of the
//    thread (slots live in a deque and are never freed), but its CONTENTS
//    are only yours until the enclosing Scope ends / reset() runs — after
//    that the next acquirer may overwrite them.
//  - Never hold a workspace buffer across an iteration boundary; state
//    that must survive iterations belongs in a member buffer.
//  - acquire() reshapes the slot to the requested shape; pass
//    `zeroed=true` when the algorithm needs zero-initialized contents
//    (contents are otherwise unspecified stale values).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "gansec/math/matrix.hpp"

namespace gansec::math {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena.
  static Workspace& local();

  /// Next scratch matrix, reshaped to rows x cols. Contents are stale
  /// unless `zeroed` is set.
  Matrix& acquire(std::size_t rows, std::size_t cols, bool zeroed = false);

  /// Next scratch double buffer, resized to n (contents stale).
  std::vector<double>& acquire_doubles(std::size_t n);

  /// Rewinds both cursors to zero; storage is retained for reuse.
  void reset();

  /// RAII cursor save/restore, so nested users (a layer inside a trainer
  /// iteration, a scoring pass inside a sweep) compose without resetting
  /// each other's live buffers.
  class Scope {
   public:
    explicit Scope(Workspace& ws)
        : ws_(ws),
          saved_matrix_(ws.matrix_cursor_),
          saved_doubles_(ws.doubles_cursor_) {}
    ~Scope() {
      ws_.matrix_cursor_ = saved_matrix_;
      ws_.doubles_cursor_ = saved_doubles_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t saved_matrix_;
    std::size_t saved_doubles_;
  };

  /// Number of live (acquired since last reset) matrix slots.
  std::size_t live_matrices() const { return matrix_cursor_; }
  /// Total matrix slots ever created on this arena.
  std::size_t slot_count() const { return matrices_.size(); }
  /// Largest total footprint (bytes) this arena has ever held.
  std::size_t high_water_bytes() const { return high_water_bytes_; }

 private:
  void note_growth(std::size_t grown_bytes);

  std::deque<Matrix> matrices_;
  std::deque<std::vector<double>> doubles_;
  std::size_t matrix_cursor_ = 0;
  std::size_t doubles_cursor_ = 0;
  std::size_t footprint_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
};

}  // namespace gansec::math
