// Continuous wavelet transform with the analytic Morlet wavelet.
//
// The paper converts time-domain acoustic energy flows to frequency-domain
// features using a continuous wavelet transform, "which preserves the
// high-frequency resolution in time-domain" (Section IV-B). This
// implementation evaluates the CWT at arbitrary target frequencies via
// frequency-domain multiplication: W(s, t) = ifft(X(w) * conj(psihat(s w))).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace gansec::dsp {

struct CwtConfig {
  double sample_rate = 0.0;  ///< Hz
  /// Morlet center frequency omega0; 6.0 is the conventional choice that
  /// keeps the wavelet approximately admissible.
  double omega0 = 6.0;
};

class MorletCwt {
 public:
  explicit MorletCwt(CwtConfig config);

  const CwtConfig& config() const { return config_; }

  /// Wavelet scale corresponding to a target frequency in Hz.
  double scale_for_frequency(double frequency_hz) const;

  /// Full scalogram: result[f][t] = |W(s_f, t)| for each target frequency
  /// (rows) over the original signal length (columns).
  std::vector<std::vector<double>> scalogram(
      const std::vector<double>& signal,
      const std::vector<double>& frequencies_hz) const;

  /// Mean |W(s_f, t)| over time for each target frequency — the per-frame
  /// energy feature vector used by GAN-Sec (one value per frequency bin).
  std::vector<double> band_energies(
      const std::vector<double>& signal,
      const std::vector<double>& frequencies_hz) const;

 private:
  /// Morlet frequency response psihat(s*w) evaluated at angular frequency w.
  double wavelet_fourier(double scale, double angular_frequency) const;

  CwtConfig config_;

  friend class CwtWindowPlan;
};

/// Precomputed per-window CWT state for the streaming scoring path.
///
/// The batch `band_energies` re-derives the wavelet frequency response for
/// every call; a long-running monitor scores the same (window length,
/// frequency grid) thousands of times per stream. The plan evaluates the
/// Morlet response table once at construction and keeps FFT scratch as
/// members, so `band_energies_into` performs zero allocations per window
/// and produces bit-identical values to `MorletCwt::band_energies` on the
/// same samples (same operations in the same order).
///
/// Not thread-safe: the scratch buffers make each plan single-stream.
/// Give every worker shard its own plan (they are cheap: two complex
/// buffers plus the response table).
class CwtWindowPlan {
 public:
  /// `window_length` is the exact sample count every window must have;
  /// `frequencies_hz` is the target grid (e.g. FrequencyBinner::centers()).
  CwtWindowPlan(const MorletCwt& cwt, std::size_t window_length,
                std::vector<double> frequencies_hz);

  std::size_t window_length() const { return window_length_; }
  const std::vector<double>& frequencies() const { return frequencies_; }

  /// Mean |W(s_f, t)| per target frequency written to `out` (one value per
  /// frequency). `length` must equal window_length(); `out` must hold
  /// frequencies().size() doubles. No allocation.
  void band_energies_into(const double* window, std::size_t length,
                          double* out);

  /// Convenience allocation form for tests and one-shot callers.
  std::vector<double> band_energies(const std::vector<double>& window);

 private:
  std::size_t window_length_;
  std::size_t padded_;  ///< next_power_of_two(window_length_)
  std::vector<double> frequencies_;
  /// Row-major [frequency][padded_] Morlet responses; negative-frequency
  /// bins (k > padded_/2) are zero, mirroring the batch path.
  std::vector<double> response_;
  std::vector<std::complex<double>> spectrum_;
  std::vector<std::complex<double>> work_;
};

}  // namespace gansec::dsp
