// Continuous wavelet transform with the analytic Morlet wavelet.
//
// The paper converts time-domain acoustic energy flows to frequency-domain
// features using a continuous wavelet transform, "which preserves the
// high-frequency resolution in time-domain" (Section IV-B). This
// implementation evaluates the CWT at arbitrary target frequencies via
// frequency-domain multiplication: W(s, t) = ifft(X(w) * conj(psihat(s w))).
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::dsp {

struct CwtConfig {
  double sample_rate = 0.0;  ///< Hz
  /// Morlet center frequency omega0; 6.0 is the conventional choice that
  /// keeps the wavelet approximately admissible.
  double omega0 = 6.0;
};

class MorletCwt {
 public:
  explicit MorletCwt(CwtConfig config);

  const CwtConfig& config() const { return config_; }

  /// Wavelet scale corresponding to a target frequency in Hz.
  double scale_for_frequency(double frequency_hz) const;

  /// Full scalogram: result[f][t] = |W(s_f, t)| for each target frequency
  /// (rows) over the original signal length (columns).
  std::vector<std::vector<double>> scalogram(
      const std::vector<double>& signal,
      const std::vector<double>& frequencies_hz) const;

  /// Mean |W(s_f, t)| over time for each target frequency — the per-frame
  /// energy feature vector used by GAN-Sec (one value per frequency bin).
  std::vector<double> band_energies(
      const std::vector<double>& signal,
      const std::vector<double>& frequencies_hz) const;

 private:
  /// Morlet frequency response psihat(s*w) evaluated at angular frequency w.
  double wavelet_fourier(double scale, double angular_frequency) const;

  CwtConfig config_;
};

}  // namespace gansec::dsp
