// Non-uniform frequency binning.
//
// The paper extracts "a non-uniformly distributed 100 bins ... between 50
// and 5000 Hz" from the CWT. The exact placement is unspecified; this
// binner uses logarithmic spacing (the natural grid for wavelet scales),
// configurable to linear spacing for ablation.
#pragma once

#include <cstddef>
#include <vector>

namespace gansec::dsp {

enum class BinSpacing { kLogarithmic, kLinear };

class FrequencyBinner {
 public:
  /// `bins` center frequencies spanning [f_min, f_max].
  FrequencyBinner(double f_min, double f_max, std::size_t bins,
                  BinSpacing spacing = BinSpacing::kLogarithmic);

  const std::vector<double>& centers() const { return centers_; }
  std::size_t size() const { return centers_.size(); }
  double f_min() const { return f_min_; }
  double f_max() const { return f_max_; }
  BinSpacing spacing() const { return spacing_; }

  /// Index of the bin whose center is nearest to `frequency_hz`.
  std::size_t nearest_bin(double frequency_hz) const;

  /// The paper's default configuration: 100 log-spaced bins in 50-5000 Hz.
  static FrequencyBinner paper_default();

 private:
  double f_min_;
  double f_max_;
  BinSpacing spacing_;
  std::vector<double> centers_;
};

}  // namespace gansec::dsp
