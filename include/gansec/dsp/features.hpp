// Feature pipeline helpers: framing and min-max scaling.
//
// Implements the paper's f_X (feature construction: frame the waveform,
// CWT each frame) and the scaling step that maps frequency magnitudes to
// [0,1] before CGAN training (Section IV-C: "frequency magnitudes ...
// are scaled between 0 and 1").
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "gansec/math/matrix.hpp"

namespace gansec::dsp {

/// Splits a signal into fixed-length frames. Frames are advanced by `hop`
/// samples; a trailing partial frame is dropped.
std::vector<std::vector<double>> frame_signal(
    const std::vector<double>& signal, std::size_t frame_length,
    std::size_t hop);

/// Per-column min-max scaler mapping training data to [0,1]. Columns with
/// zero range map to 0.5 (constant features carry no information).
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  /// Learns per-column minima/maxima from training data.
  void fit(const math::Matrix& data);

  /// Applies the learned transform; values outside the training range are
  /// clamped to [0,1].
  math::Matrix transform(const math::Matrix& data) const;

  /// Destination-passing single-row transform for the streaming path:
  /// scales `count` raw values into `out` with the exact float operations
  /// of transform() (bit-identical results), no allocation. `count` must
  /// equal the fitted column count.
  void transform_row_into(const float* row, std::size_t count,
                          float* out) const;

  math::Matrix fit_transform(const math::Matrix& data);

  /// Maps scaled values back to the original units.
  math::Matrix inverse_transform(const math::Matrix& data) const;

  bool fitted() const { return !mins_.empty(); }
  const std::vector<float>& mins() const { return mins_; }
  const std::vector<float>& maxs() const { return maxs_; }

  void save(std::ostream& os) const;
  static MinMaxScaler load(std::istream& is);

 private:
  std::vector<float> mins_;
  std::vector<float> maxs_;
};

}  // namespace gansec::dsp
