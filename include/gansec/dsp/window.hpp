// Analysis window functions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gansec::dsp {

enum class WindowKind { kRectangular, kHann, kHamming, kBlackman };

/// Window coefficients of the given length (symmetric form).
std::vector<double> make_window(WindowKind kind, std::size_t length);

/// Multiplies signal by window elementwise; sizes must match.
std::vector<double> apply_window(const std::vector<double>& signal,
                                 const std::vector<double>& window);

std::string window_name(WindowKind kind);

}  // namespace gansec::dsp
