// Short-time Fourier transform features.
//
// The paper chooses the continuous wavelet transform for its time-frequency
// resolution. The STFT is the standard alternative; providing the same
// band-energy interface lets the feature-method ablation quantify the
// design choice on the actual pipeline.
#pragma once

#include <cstddef>
#include <vector>

#include "gansec/dsp/window.hpp"

namespace gansec::dsp {

struct StftConfig {
  double sample_rate = 0.0;
  std::size_t frame_length = 1024;  ///< must be a power of two
  std::size_t hop = 256;
  WindowKind window = WindowKind::kHann;
};

class Stft {
 public:
  explicit Stft(StftConfig config);

  const StftConfig& config() const { return config_; }

  /// Frequency of FFT bin k for the configured frame length.
  double bin_frequency(std::size_t k) const;

  /// Magnitude spectrogram: result[frame][bin], bins 0..frame_length/2.
  /// A signal shorter than one frame is zero-padded into a single frame.
  std::vector<std::vector<double>> spectrogram(
      const std::vector<double>& signal) const;

  /// Mean magnitude over frames at the FFT bin nearest to each requested
  /// center frequency — the STFT analogue of MorletCwt::band_energies.
  std::vector<double> band_energies(
      const std::vector<double>& signal,
      const std::vector<double>& frequencies_hz) const;

 private:
  StftConfig config_;
  std::vector<double> window_;
};

}  // namespace gansec::dsp
