// Iterative radix-2 Cooley-Tukey FFT.
//
// The continuous wavelet transform in this library is computed in the
// frequency domain, so the FFT is the workhorse of the energy-flow feature
// pipeline. Transforms operate on power-of-two lengths; helpers are provided
// for padding.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace gansec::dsp {

using Complex = std::complex<double>;

bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n == 0 maps to 1).
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT. Length must be a power of two (throws
/// InvalidArgumentError otherwise).
void fft_in_place(std::vector<Complex>& x);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_in_place(std::vector<Complex>& x);

/// Forward FFT of a real signal, zero-padded to the next power of two.
std::vector<Complex> fft_real(const std::vector<double>& x);

/// Magnitude spectrum |X[k]| for k in [0, N/2] of a real signal
/// (zero-padded to a power of two before transforming).
std::vector<double> magnitude_spectrum(const std::vector<double>& x);

/// Frequency in Hz of FFT bin k for a length-n transform at sample_rate.
double bin_frequency(std::size_t k, std::size_t n, double sample_rate);

}  // namespace gansec::dsp
