// GAN-Sec error hierarchy.
//
// All gansec libraries report failures by throwing exceptions derived from
// gansec::Error. Each substrate has its own subclass so callers can
// discriminate between e.g. a malformed G-code program and a dimension
// mismatch in the neural-network stack.
#pragma once

#include <stdexcept>
#include <string>

namespace gansec {

/// Root of the GAN-Sec exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Shape/dimension mismatches in linear algebra and NN layers.
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what) : Error(what) {}
};

/// Invalid argument values (negative widths, empty datasets, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Parse failures (G-code programs, trace files, serialized models).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// I/O failures (missing files, truncated streams).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// CPPS architecture inconsistencies (dangling flow endpoints, ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Numeric failures (NaN/Inf encountered where finite values are required).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

}  // namespace gansec
